// Package flightrec is the simulator's time-travel flight recorder: a
// bounded ring of periodic machine checkpoints (internal/snapshot images)
// plus a cycle-indexed ring of telemetry events, recorded while a machine
// runs and replayed afterwards with deterministic seek to any covered cycle.
//
// The recorder is always attachable: checkpointing is amortized off the hot
// path by piggybacking on pipeline.RunBreakable's break points (Poll/Break),
// events arrive through the telemetry tracer's sink chain, and a detached
// machine pays nothing — no pipeline hook is introduced by this package.
// Seeking restores the newest checkpoint at or below the target cycle and
// silently replays forward cycle-accurately, each replay validated by the
// lockstep invariant checker, so a seek costs O(checkpoint interval) and the
// reached state is byte-identical to the original run's state at that cycle
// (PR 6's bit-identical-restore guarantee extended transitively).
//
// With a directory configured the recorder mirrors itself to disk — a
// manifest naming the workload, atomic checkpoint image files, and rotated
// JSONL event segments — so a crashed or anomalous run leaves a post-mortem
// artifact that cmd/reusedbg can open cold.
package flightrec

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"reuseiq/internal/pipeline"
	"reuseiq/internal/snapshot"
	"reuseiq/internal/telemetry"
)

// Defaults. The interval is the O(seek) bound: larger rings cost memory,
// larger intervals cost replay time. 1<<16 cycles keeps checkpoint capture
// (a full state export, ~tens of microseconds) well under 10% of simulation
// time at the core's steady-state speed while bounding any seek's replay to
// at most one interval of cycles.
const (
	DefaultInterval = 1 << 16
	DefaultDepth    = 8
	DefaultEvents   = 1 << 16
)

// ManifestName is the manifest file inside a recorder directory.
const ManifestName = "manifest.json"

// Config parameterizes a Recorder.
type Config struct {
	// Interval is the cycle distance between checkpoints (default
	// DefaultInterval). Checkpoints land on the first break point at or
	// after each due cycle, so the actual spacing is Interval rounded up
	// to the break granularity.
	Interval uint64
	// Depth bounds the checkpoint ring (default DefaultDepth). The oldest
	// checkpoint is evicted when a new one would exceed it; the seekable
	// range starts at the oldest retained checkpoint.
	Depth int
	// Events bounds the retained telemetry event ring (default
	// DefaultEvents). Older events are dropped, counted in Status.
	Events int
	// Dir, when non-empty, persists the recording (manifest, checkpoint
	// images, event segments) so a crashed run leaves a debuggable
	// artifact. Empty records in memory only.
	Dir string
	// Manifest describes the workload for the persisted artifact so that
	// cmd/reusedbg can rebuild the config and program cold. Ignored when
	// Dir is empty (an in-memory Archive carries the live config).
	Manifest Manifest
}

func (c Config) normalized() Config {
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.Depth <= 0 {
		c.Depth = DefaultDepth
	}
	if c.Events <= 0 {
		c.Events = DefaultEvents
	}
	return c
}

// Checkpoint is one ring entry: a full machine state at a cycle boundary.
type Checkpoint struct {
	Cycle uint64
	State *pipeline.MachineState
}

// Status is the recorder's observable state, served by the obs layer's
// /debug/timetravel endpoint. All fields are safe to read while the
// simulation runs.
type Status struct {
	Interval           uint64 `json:"interval"`
	Depth              int    `json:"depth"`
	Checkpoints        int    `json:"checkpoints"`
	CheckpointsTaken   uint64 `json:"checkpoints_taken"`
	CheckpointsEvicted uint64 `json:"checkpoints_evicted"`
	// SeekableFrom/To are the cycles of the oldest and newest retained
	// checkpoints: any cycle in between seeks with at most one interval of
	// replay (later cycles are reachable by replaying past the newest
	// checkpoint).
	SeekableFrom   uint64 `json:"seekable_from"`
	SeekableTo     uint64 `json:"seekable_to"`
	EventsRetained int    `json:"events_retained"`
	EventsTotal    uint64 `json:"events_total"`
	EventsDropped  uint64 `json:"events_dropped"`
	Dir            string `json:"dir,omitempty"`
}

// Recorder records one machine. Create with Attach; feed it by passing
// Break (or calling Poll) from a RunBreakable break point; close with
// Finish. Methods other than Status must run on the simulation goroutine.
type Recorder struct {
	m   *pipeline.Machine
	cfg Config

	// mu guards the checkpoint ring, which Status reads from other
	// goroutines. Checkpointing is rare (every Interval cycles), so the
	// lock never contends on the hot path.
	mu      sync.Mutex
	ckpts   []Checkpoint
	taken   uint64
	evicted uint64

	// Event ring: written on the simulation goroutine via the telemetry
	// sink chain, read only after the run (Archive) — except the counter,
	// which Status reads concurrently. The backing slice starts small and
	// doubles up to cfg.Events on demand: until the first wrap writes are
	// purely sequential (evNext == evTotal), so growth never reorders
	// retained events, and a quiet run never pays the full ring.
	events  []telemetry.Event
	evNext  int
	evTotal atomic.Uint64
	scratch []byte // reused JSONL encode buffer (one event line)

	lastCkpt uint64

	// Persistence (nil/zero when Dir is empty). Event segments are written
	// on the simulation goroutine (cheap: one AppendEvent into a reused
	// buffer per event); checkpoint images go through a single background
	// worker so the multi-hundred-KiB encode+write+rename never stalls the
	// simulation. Channel order serializes each image's write before any
	// eviction that removes it. perr latches the first write error (under
	// errMu — both goroutines latch); recording continues in memory and
	// Finish surfaces it after draining the worker.
	evFile     *os.File
	evBuf      *bufio.Writer
	evInSeg    int
	segs       []string
	jobs       chan persistJob
	workerDone chan struct{}
	errMu      sync.Mutex
	perr       error

	finished bool
}

// persistJob is one unit of background image I/O: write ck to path, or
// (ck == nil) remove an evicted image at path.
type persistJob struct {
	ck   Checkpoint
	path string
}

// Attach builds a recorder for m and splices it into the machine's telemetry
// sink chain (attaching a tracer if the machine has none — the tracer does
// not perturb the run and does not veto the fast-forward engine, whose skips
// annotate the timeline instead). It takes an immediate checkpoint, so the
// seekable range starts at the machine's current cycle.
func Attach(m *pipeline.Machine, cfg Config) (*Recorder, error) {
	cfg = cfg.normalized()
	r := &Recorder{
		m:      m,
		cfg:    cfg,
		ckpts:  make([]Checkpoint, 0, cfg.Depth),
		events: make([]telemetry.Event, min(1024, cfg.Events)),
	}
	if cfg.Dir != "" {
		if err := r.initDir(); err != nil {
			return nil, err
		}
	}
	// Checkpoints are diffed and replayed byte-for-byte; the fast-forward
	// engine's analytic skips (architecturally exact, microarchitecturally
	// re-derived) must stand down. Its bit-exact idle skips keep running
	// and annotate the timeline instead.
	m.ExactState = true
	tel := m.Tel
	if tel == nil {
		// The recorder owns the event stream; the tracer's own ring is
		// redundant with the recorder's, so keep it minimal.
		tel = telemetry.New(telemetry.Config{RingSize: 64})
		m.AttachTelemetry(tel)
	}
	prev := tel.Sink
	tel.Sink = func(e telemetry.Event) {
		if prev != nil {
			prev(e)
		}
		r.captureEvent(e)
	}
	r.checkpoint()
	return r, nil
}

// Interval returns the normalized checkpoint interval (a natural break-point
// granularity for RunBreakable).
func (r *Recorder) Interval() uint64 { return r.cfg.Interval }

// Poll takes a checkpoint if one is due. Call it from a RunBreakable break
// point (or any cycle boundary); between due cycles it is two loads and a
// compare.
func (r *Recorder) Poll() {
	if r.m.Cycle() >= r.lastCkpt+r.cfg.Interval {
		r.checkpoint()
	}
}

// Break adapts Poll to RunBreakable's break-callback signature (it never
// asks to stop).
func (r *Recorder) Break() bool {
	r.Poll()
	return false
}

// captureEvent appends one telemetry event to the ring (and the current
// on-disk segment when persisting). Runs on the simulation goroutine.
func (r *Recorder) captureEvent(e telemetry.Event) {
	if r.evNext == len(r.events) {
		if n := len(r.events); n < r.cfg.Events {
			r.events = append(r.events, make([]telemetry.Event, min(n, r.cfg.Events-n))...)
		} else {
			r.evNext = 0
		}
	}
	r.events[r.evNext] = e
	r.evNext++
	if r.evNext == len(r.events) && len(r.events) == r.cfg.Events {
		r.evNext = 0
	}
	r.evTotal.Add(1)
	if r.evBuf != nil && r.evInSeg < r.cfg.Events {
		r.evInSeg++
		r.scratch = append(telemetry.AppendEvent(r.scratch[:0], e), '\n')
		if _, err := r.evBuf.Write(r.scratch); err != nil {
			r.latchErr(err)
		}
	}
}

// checkpoint captures the machine state, persists it when configured, and
// rotates the ring.
func (r *Recorder) checkpoint() {
	st := r.m.Snapshot()
	ck := Checkpoint{Cycle: st.Cycle, State: st}
	if r.jobs != nil {
		j := persistJob{ck: ck, path: r.ckptPath(ck.Cycle)}
		if r.taken == 0 {
			// The attach-time image is the durability floor: written inline,
			// so a recording directory abandoned by a crash always holds at
			// least one loadable checkpoint. Later images go through the
			// worker; a crash can lose at most the queued tail.
			r.persist(j, nil)
		} else {
			r.jobs <- j
		}
		r.rotateSegment(ck.Cycle)
	}
	r.mu.Lock()
	r.ckpts = append(r.ckpts, ck)
	r.taken++
	var evict []Checkpoint
	if len(r.ckpts) > r.cfg.Depth {
		n := len(r.ckpts) - r.cfg.Depth
		evict = append(evict, r.ckpts[:n]...)
		r.ckpts = append(r.ckpts[:0], r.ckpts[n:]...)
		r.evicted += uint64(n)
	}
	r.mu.Unlock()
	for _, old := range evict {
		if r.jobs != nil {
			r.jobs <- persistJob{path: r.ckptPath(old.Cycle)}
		}
	}
	r.pruneSegments()
	r.lastCkpt = st.Cycle
}

// Events returns the retained events, oldest first. Call after the run (or
// from the simulation goroutine); it is not synchronized against capture.
func (r *Recorder) Events() []telemetry.Event {
	n := r.evTotal.Load()
	if n > uint64(len(r.events)) {
		n = uint64(len(r.events))
	}
	out := make([]telemetry.Event, 0, n)
	start := r.evNext - int(n)
	if start < 0 {
		start += len(r.events)
	}
	for i := 0; i < int(n); i++ {
		out = append(out, r.events[(start+i)%len(r.events)])
	}
	return out
}

// Checkpoints returns a copy of the current ring, oldest first.
func (r *Recorder) Checkpoints() []Checkpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Checkpoint(nil), r.ckpts...)
}

// Status returns the recorder's observable state. Safe to call from any
// goroutine while the simulation runs.
func (r *Recorder) Status() Status {
	st := Status{
		Interval: r.cfg.Interval,
		Depth:    r.cfg.Depth,
		Dir:      r.cfg.Dir,
	}
	r.mu.Lock()
	st.Checkpoints = len(r.ckpts)
	st.CheckpointsTaken = r.taken
	st.CheckpointsEvicted = r.evicted
	if len(r.ckpts) > 0 {
		st.SeekableFrom = r.ckpts[0].Cycle
		st.SeekableTo = r.ckpts[len(r.ckpts)-1].Cycle
	}
	r.mu.Unlock()
	total := r.evTotal.Load()
	st.EventsTotal = total
	retained := total
	if retained > uint64(len(r.events)) {
		retained = uint64(len(r.events))
	}
	st.EventsRetained = int(retained)
	st.EventsDropped = total - retained
	return st
}

// RegisterMetrics registers the recorder's counters with r (they appear in
// /metrics alongside the machine's own when the CLI publishes samples).
func (rec *Recorder) RegisterMetrics(r *telemetry.Registry) {
	r.Counter("flightrec.checkpoints_taken", func() uint64 { return rec.Status().CheckpointsTaken })
	r.Counter("flightrec.checkpoints_evicted", func() uint64 { return rec.Status().CheckpointsEvicted })
	r.Counter("flightrec.events_total", rec.evTotal.Load)
}

// Finish takes a final checkpoint at the machine's current cycle (so the end
// state seeks without replay), flushes and closes the persisted artifact,
// and returns the first persistence error encountered. Call once, after the
// run stops (normally or not).
func (r *Recorder) Finish() error {
	if r.finished {
		return r.firstErr()
	}
	r.finished = true
	if r.m.Cycle() > r.lastCkpt {
		r.checkpoint()
	}
	if r.evBuf != nil {
		if err := r.evBuf.Flush(); err != nil {
			r.latchErr(err)
		}
		if err := r.evFile.Close(); err != nil {
			r.latchErr(err)
		}
		r.evFile, r.evBuf = nil, nil
	}
	if r.jobs != nil {
		// Drain the image worker before the final manifest write, so a
		// manifest naming FinalCycle never precedes its images on disk.
		close(r.jobs)
		<-r.workerDone
		r.jobs = nil
	}
	if r.cfg.Dir != "" {
		man := r.manifest()
		man.FinalCycle = r.m.Cycle()
		man.Halted = r.m.Halted()
		if err := writeManifest(r.cfg.Dir, man); err != nil {
			r.latchErr(err)
		}
	}
	return r.firstErr()
}

func (r *Recorder) firstErr() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.perr
}

// Archive freezes the recording into a seekable in-memory archive. Call
// after the run; the checkpoint states are shared (immutable), not copied.
func (r *Recorder) Archive() *Archive {
	a := &Archive{
		Man:    r.manifest(),
		Cfg:    r.m.Cfg,
		Prog:   r.m.Prog,
		Ckpts:  r.Checkpoints(),
		Events: r.Events(),
		End:    r.m.Cycle(),
		Halted: r.m.Halted(),
	}
	a.Man.FinalCycle = a.End
	a.Man.Halted = a.Halted
	return a
}

// manifest assembles the persisted manifest from the caller-supplied
// workload identity plus the recorder's own parameters.
func (r *Recorder) manifest() Manifest {
	man := r.cfg.Manifest
	man.Interval = r.cfg.Interval
	man.Depth = r.cfg.Depth
	man.ConfigHash = fmt.Sprintf("%016x", snapshot.ConfigHash(r.m.Cfg))
	man.ProgramHash = fmt.Sprintf("%016x", snapshot.ProgramHash(r.m.Prog))
	return man
}

// ---- persistence ----

func (r *Recorder) ckptPath(cycle uint64) string {
	return filepath.Join(r.cfg.Dir, fmt.Sprintf("ckpt-%020d.img", cycle))
}

func (r *Recorder) segPath(cycle uint64) string {
	return filepath.Join(r.cfg.Dir, fmt.Sprintf("events-%020d.jsonl", cycle))
}

func (r *Recorder) initDir() error {
	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("flightrec: %w", err)
	}
	if err := writeManifest(r.cfg.Dir, r.manifest()); err != nil {
		return fmt.Errorf("flightrec: %w", err)
	}
	if err := r.openSegment(r.m.Cycle()); err != nil {
		return err
	}
	// Buffered a little past the ring depth so a slow disk backpressures
	// the simulation instead of queueing unbounded state copies.
	r.jobs = make(chan persistJob, r.cfg.Depth+2)
	r.workerDone = make(chan struct{})
	go r.persistWorker()
	return nil
}

// openSegment starts a new event segment file.
func (r *Recorder) openSegment(cycle uint64) error {
	path := r.segPath(cycle)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("flightrec: %w", err)
	}
	r.evFile = f
	r.evBuf = bufio.NewWriterSize(f, 1<<16)
	r.evInSeg = 0
	r.segs = append(r.segs, path)
	return nil
}

// persistWorker is the single background goroutine that owns all checkpoint
// image I/O. The machine state in each job is an immutable deep copy and
// m.Cfg/m.Prog never change after construction, so encoding off-thread is
// safe; a reused buffer keeps each image to one write syscall plus the
// atomic rename. Jobs with a nil state remove an evicted image — channel
// FIFO order guarantees the write always lands first.
func (r *Recorder) persistWorker() {
	defer close(r.workerDone)
	var buf []byte
	for j := range r.jobs {
		buf = r.persist(j, buf)
	}
}

// persist executes one image job (write, or remove when the state is nil),
// reusing and returning buf. Errors latch rather than propagate — the
// recorder keeps the in-memory ring usable even when the disk fails.
func (r *Recorder) persist(j persistJob, buf []byte) []byte {
	if j.ck.State == nil {
		_ = os.Remove(j.path)
		return buf
	}
	w := bytes.NewBuffer(buf[:0])
	err := snapshot.Write(w, j.ck.State, r.m.Cfg, r.m.Prog)
	buf = w.Bytes()
	if err == nil {
		tmp := j.path + ".tmp"
		if err = os.WriteFile(tmp, buf, 0o644); err == nil {
			err = os.Rename(tmp, j.path)
		}
	}
	if err != nil {
		r.latchErr(err)
	}
	return buf
}

// latchErr records the first persistence error (any goroutine).
func (r *Recorder) latchErr(err error) {
	r.errMu.Lock()
	if r.perr == nil {
		r.perr = err
	}
	r.errMu.Unlock()
}

// rotateSegment closes the current event segment at a checkpoint boundary
// and opens the next (skip if the current segment is still empty — the
// initial checkpoint). Runs on the simulation goroutine, which owns evBuf.
func (r *Recorder) rotateSegment(cycle uint64) {
	if r.evBuf == nil || r.evInSeg == 0 {
		return
	}
	if err := r.evBuf.Flush(); err != nil {
		r.latchErr(err)
	}
	if err := r.evFile.Close(); err != nil {
		r.latchErr(err)
	}
	r.evFile, r.evBuf = nil, nil
	if err := r.openSegment(cycle); err != nil {
		r.latchErr(err)
	}
}

// pruneSegments deletes event segments that can no longer back any retained
// checkpoint's replay window (everything older than the segment preceding
// the oldest checkpoint). Bounds the artifact: at most Depth+1 segments.
func (r *Recorder) pruneSegments() {
	if r.cfg.Dir == "" {
		return
	}
	max := r.cfg.Depth + 1
	for len(r.segs) > max {
		_ = os.Remove(r.segs[0])
		r.segs = append(r.segs[:0], r.segs[1:]...)
	}
}

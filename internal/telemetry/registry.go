package telemetry

import (
	"fmt"
	"math/bits"
	"sort"

	"reuseiq/internal/stats"
)

// Registry is the unified metrics surface: every component registers its
// counters, gauges and histograms here through one typed interface, and the
// CLIs render everything from a single Snapshot into the existing stats.Set
// format. Registration happens at reporting time (it reads live values
// through closures), so the registry adds nothing to the simulation hot
// path.
//
// Duplicate registrations under the same name replace the earlier reader
// (last wins): a metric renders exactly once per snapshot, so the Prometheus
// exposition built from a TypedSnapshot can never contain duplicate sample
// lines. The replacement policy (rather than rejection) lets a caller layer
// a refined reader over a generic one without bookkeeping; the choice is
// pinned by TestRegistryDuplicateNameLastWins.
type Registry struct {
	names  []string
	reads  []func() uint64
	cidx   map[string]int
	gnames []string
	greads []func() float64
	gidx   map[string]int
	hists  []*namedHist
	hidx   map[string]int
}

type namedHist struct {
	name string
	h    *Histogram
}

// Counter registers a named uint64 counter read through fn. Re-registering
// an existing name replaces its reader.
func (r *Registry) Counter(name string, fn func() uint64) {
	if i, ok := r.cidx[name]; ok {
		r.reads[i] = fn
		return
	}
	if r.cidx == nil {
		r.cidx = make(map[string]int)
	}
	r.cidx[name] = len(r.names)
	r.names = append(r.names, name)
	r.reads = append(r.reads, fn)
}

// CounterVal registers a counter with a fixed value (a snapshot).
func (r *Registry) CounterVal(name string, v uint64) {
	r.Counter(name, func() uint64 { return v })
}

// Gauge registers a named float64 gauge read through fn. Gauges are rendered
// in parts-per-million so they fit the integer stats.Set format losslessly
// enough for reporting (the name gains a ".ppm" suffix). Re-registering an
// existing name replaces its reader.
func (r *Registry) Gauge(name string, fn func() float64) {
	if i, ok := r.gidx[name]; ok {
		r.greads[i] = fn
		return
	}
	if r.gidx == nil {
		r.gidx = make(map[string]int)
	}
	r.gidx[name] = len(r.gnames)
	r.gnames = append(r.gnames, name)
	r.greads = append(r.greads, fn)
}

// RegisterHistogram registers h's buckets for rendering under name.
// Re-registering an existing name replaces the histogram.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if i, ok := r.hidx[name]; ok {
		r.hists[i].h = h
		return
	}
	if r.hidx == nil {
		r.hidx = make(map[string]int)
	}
	r.hidx[name] = len(r.hists)
	r.hists = append(r.hists, &namedHist{name: name, h: h})
}

// Snapshot renders every registered metric into an ordered stats.Set:
// counters under their own names, gauges as <name>.ppm, histograms as
// <name>.le_<bound> cumulative bucket counters plus <name>.count.
func (r *Registry) Snapshot() *stats.Set {
	s := &stats.Set{}
	for i, name := range r.names {
		s.Put(name, r.reads[i]())
	}
	for i, name := range r.gnames {
		s.Put(name+".ppm", uint64(r.greads[i]()*1e6))
	}
	for _, nh := range r.hists {
		nh.h.snapshot(nh.name, s)
	}
	return s
}

// CounterPoint is one counter in a MetricsSnapshot.
type CounterPoint struct {
	Name  string
	Value uint64
}

// GaugePoint is one gauge in a MetricsSnapshot, with its raw float value
// (no ppm scaling — typed consumers like the Prometheus exposition want the
// real number).
type GaugePoint struct {
	Name  string
	Value float64
}

// HistBucket is one cumulative histogram bucket: Count observations were
// <= LE (IsInf marks the +Inf overflow bucket, where LE is meaningless).
type HistBucket struct {
	LE    uint64
	IsInf bool
	Count uint64
}

// HistPoint is one histogram in a MetricsSnapshot. Buckets are cumulative
// in ascending LE order; the final bucket is always +Inf with Count equal to
// the total observation count.
type HistPoint struct {
	Name    string
	Buckets []HistBucket
	Count   uint64
	Sum     uint64
	Max     uint64
}

// MetricsSnapshot is a typed, immutable point-in-time copy of a Registry's
// metrics. Unlike Snapshot it preserves the metric kinds, so consumers that
// need them (the Prometheus exposition in internal/obs) don't have to guess
// from name suffixes. Take it on the goroutine that owns the underlying
// counters; the returned value is safe to hand to other goroutines.
type MetricsSnapshot struct {
	Counters []CounterPoint
	Gauges   []GaugePoint
	Hists    []HistPoint
}

// TypedSnapshot captures every registered metric with its kind and current
// value, sorted by name within each kind. The ordering is part of the
// contract (pinned by TestTypedSnapshotSorted): the run ledger persists
// snapshots verbatim and diffs them across runs and processes, so two
// registries holding the same metrics must snapshot identically no matter
// what order their components registered in.
//
//reuse:deterministic
func (r *Registry) TypedSnapshot() *MetricsSnapshot {
	ms := &MetricsSnapshot{
		Counters: make([]CounterPoint, len(r.names)),
		Gauges:   make([]GaugePoint, len(r.gnames)),
		Hists:    make([]HistPoint, len(r.hists)),
	}
	for i, name := range r.names {
		ms.Counters[i] = CounterPoint{Name: name, Value: r.reads[i]()}
	}
	for i, name := range r.gnames {
		ms.Gauges[i] = GaugePoint{Name: name, Value: r.greads[i]()}
	}
	for i, nh := range r.hists {
		ms.Hists[i] = HistPoint{
			Name:    nh.name,
			Buckets: nh.h.CumulativeBuckets(),
			Count:   nh.h.count,
			Sum:     nh.h.sum,
			Max:     nh.h.max,
		}
	}
	sort.Slice(ms.Counters, func(i, j int) bool { return ms.Counters[i].Name < ms.Counters[j].Name })
	sort.Slice(ms.Gauges, func(i, j int) bool { return ms.Gauges[i].Name < ms.Gauges[j].Name })
	sort.Slice(ms.Hists, func(i, j int) bool { return ms.Hists[i].Name < ms.Hists[j].Name })
	return ms
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations <= 2^i, with a final overflow bucket.
const histBuckets = 20

// Histogram is a fixed-bucket power-of-two latency histogram. Observation is
// allocation-free; the zero value is ready to use.
type Histogram struct {
	buckets [histBuckets + 1]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	// Bucket i holds v <= 1<<i, i.e. i = ceil(log2(v)) — computed with a
	// bit scan rather than a linear walk: Observe sits on the per-commit
	// path of every instrumented run (issue-to-commit latency), where a
	// ~10-iteration loop per observation is measurable.
	i := 0
	if v > 1 {
		i = bits.Len64(v - 1)
	}
	if i > histBuckets {
		i = histBuckets
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest observed value.
func (h *Histogram) Max() uint64 { return h.max }

// CumulativeBuckets returns the cumulative (le) buckets in ascending bound
// order, eliding empty trailing buckets past the largest observation and
// always ending with the +Inf bucket.
func (h *Histogram) CumulativeBuckets() []HistBucket {
	out := make([]HistBucket, 0, histBuckets+1)
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i]
		bound := uint64(1) << uint(i)
		out = append(out, HistBucket{LE: bound, Count: cum})
		if cum == h.count && bound >= h.max {
			break
		}
	}
	return append(out, HistBucket{IsInf: true, Count: h.count})
}

// snapshot writes cumulative (le) buckets into s. Empty trailing buckets
// beyond the largest observation are elided to keep reports readable.
func (h *Histogram) snapshot(name string, s *stats.Set) {
	if h.count == 0 {
		s.Put(name+".count", 0)
		return
	}
	var cum uint64
	for i := 0; i <= histBuckets; i++ {
		cum += h.buckets[i]
		bound := uint64(1) << uint(i)
		if i == histBuckets {
			s.Put(name+".le_inf", cum)
			break
		}
		s.Put(fmt.Sprintf("%s.le_%d", name, bound), cum)
		if cum == h.count && bound >= h.max {
			break
		}
	}
	s.Put(name+".count", h.count)
	s.Put(name+".sum", h.sum)
	s.Put(name+".max", h.max)
}

package telemetry

import (
	"fmt"

	"reuseiq/internal/stats"
)

// Registry is the unified metrics surface: every component registers its
// counters, gauges and histograms here through one typed interface, and the
// CLIs render everything from a single Snapshot into the existing stats.Set
// format. Registration happens at reporting time (it reads live values
// through closures), so the registry adds nothing to the simulation hot
// path.
type Registry struct {
	names  []string
	reads  []func() uint64
	gnames []string
	greads []func() float64
	hists  []*namedHist
}

type namedHist struct {
	name string
	h    *Histogram
}

// Counter registers a named uint64 counter read through fn.
func (r *Registry) Counter(name string, fn func() uint64) {
	r.names = append(r.names, name)
	r.reads = append(r.reads, fn)
}

// CounterVal registers a counter with a fixed value (a snapshot).
func (r *Registry) CounterVal(name string, v uint64) {
	r.Counter(name, func() uint64 { return v })
}

// Gauge registers a named float64 gauge read through fn. Gauges are rendered
// in parts-per-million so they fit the integer stats.Set format losslessly
// enough for reporting (the name gains a ".ppm" suffix).
func (r *Registry) Gauge(name string, fn func() float64) {
	r.gnames = append(r.gnames, name)
	r.greads = append(r.greads, fn)
}

// RegisterHistogram registers h's buckets for rendering under name.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.hists = append(r.hists, &namedHist{name: name, h: h})
}

// Snapshot renders every registered metric into an ordered stats.Set:
// counters under their own names, gauges as <name>.ppm, histograms as
// <name>.le_<bound> cumulative bucket counters plus <name>.count.
func (r *Registry) Snapshot() *stats.Set {
	s := &stats.Set{}
	for i, name := range r.names {
		s.Put(name, r.reads[i]())
	}
	for i, name := range r.gnames {
		s.Put(name+".ppm", uint64(r.greads[i]()*1e6))
	}
	for _, nh := range r.hists {
		nh.h.snapshot(nh.name, s)
	}
	return s
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations <= 2^i, with a final overflow bucket.
const histBuckets = 20

// Histogram is a fixed-bucket power-of-two latency histogram. Observation is
// allocation-free; the zero value is ready to use.
type Histogram struct {
	buckets [histBuckets + 1]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < histBuckets && v > uint64(1)<<uint(i) {
		i++
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest observed value.
func (h *Histogram) Max() uint64 { return h.max }

// snapshot writes cumulative (le) buckets into s. Empty trailing buckets
// beyond the largest observation are elided to keep reports readable.
func (h *Histogram) snapshot(name string, s *stats.Set) {
	if h.count == 0 {
		s.Put(name+".count", 0)
		return
	}
	var cum uint64
	for i := 0; i <= histBuckets; i++ {
		cum += h.buckets[i]
		bound := uint64(1) << uint(i)
		if i == histBuckets {
			s.Put(name+".le_inf", cum)
			break
		}
		s.Put(fmt.Sprintf("%s.le_%d", name, bound), cum)
		if cum == h.count && bound >= h.max {
			break
		}
	}
	s.Put(name+".count", h.count)
	s.Put(name+".sum", h.sum)
	s.Put(name+".max", h.max)
}

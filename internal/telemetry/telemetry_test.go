package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"reuseiq/internal/core"
)

func TestRingRetainsNewestAndCountsDrops(t *testing.T) {
	tr := New(Config{RingSize: 4})
	for i := 0; i < 10; i++ {
		tr.BeginCycle(uint64(i))
		tr.Emit(EvIteration, 0x100, uint64(i), 0)
	}
	if tr.Total() != 10 {
		t.Errorf("Total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", tr.Dropped())
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if want := uint64(6 + i); e.A != want {
			t.Errorf("event %d: A = %d, want %d (oldest-first order)", i, e.A, want)
		}
	}
}

func TestRingNoDropsUnderCapacity(t *testing.T) {
	tr := New(Config{RingSize: 8})
	for i := 0; i < 5; i++ {
		tr.Emit(EvBuffer, 0, uint64(i), 0)
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", tr.Dropped())
	}
	if got := len(tr.Events()); got != 5 {
		t.Errorf("retained %d, want 5", got)
	}
}

// ctl fabricates a controller event stream: a session that buffers two
// iterations, promotes, and exits reuse.
func playSession(tr *Tracer) {
	tr.BeginCycle(100)
	tr.CtlEvent(core.CtlEvent{Kind: core.CtlBuffer, Head: 0x40, Tail: 0x50, Size: 5, BufferedInsts: 7})
	tr.BeginCycle(110)
	tr.CtlEvent(core.CtlEvent{Kind: core.CtlIteration, Head: 0x40, Size: 5, BufferedInsts: 12})
	tr.BeginCycle(120)
	tr.CtlEvent(core.CtlEvent{Kind: core.CtlIteration, Head: 0x40, Size: 5, BufferedInsts: 17})
	tr.BeginCycle(121)
	tr.CtlEvent(core.CtlEvent{Kind: core.CtlPromote, Head: 0x40, Tail: 0x50, BufferedInsts: 17})
	for c := uint64(122); c < 150; c++ {
		tr.BeginCycle(c)
		tr.GatedCycle()
		tr.ReuseSupplied(2)
	}
	tr.BeginCycle(150)
	tr.CtlEvent(core.CtlEvent{Kind: core.CtlReuseExit, Head: 0x40, BufferedInsts: 17})
}

func TestSessionLifecycle(t *testing.T) {
	tr := New(Config{RingSize: 64})
	playSession(tr)
	tr.Finalize(200)

	sessions := tr.Sessions()
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(sessions))
	}
	s := sessions[0]
	if s.Head != 0x40 || s.Tail != 0x50 || s.StaticSize != 5 {
		t.Errorf("loop identity wrong: %+v", s)
	}
	if s.StartCycle != 100 || s.PromoteCycle != 121 || s.EndCycle != 150 {
		t.Errorf("cycle stamps wrong: start=%d promote=%d end=%d",
			s.StartCycle, s.PromoteCycle, s.EndCycle)
	}
	if !s.Promoted() {
		t.Error("session should report promoted")
	}
	if s.Iterations != 2 {
		t.Errorf("Iterations = %d, want 2", s.Iterations)
	}
	if s.BufferedInsts != 10 {
		t.Errorf("BufferedInsts = %d, want 10 (delta from open)", s.BufferedInsts)
	}
	if s.ReusedInsts != 56 {
		t.Errorf("ReusedInsts = %d, want 56", s.ReusedInsts)
	}
	if s.GatedCycles != 28 {
		t.Errorf("GatedCycles = %d, want 28", s.GatedCycles)
	}
	if s.EndReason != core.ReasonReuseExit {
		t.Errorf("EndReason = %v, want reuse-exit", s.EndReason)
	}
	if tr.SessionCycles.Count() != 1 {
		t.Errorf("SessionCycles observations = %d, want 1", tr.SessionCycles.Count())
	}
}

func TestSessionRevokedBeforePromotion(t *testing.T) {
	tr := New(Config{RingSize: 64})
	tr.BeginCycle(10)
	tr.CtlEvent(core.CtlEvent{Kind: core.CtlBuffer, Head: 0x80, Tail: 0x90, Size: 4, BufferedInsts: 0})
	tr.BeginCycle(15)
	tr.CtlEvent(core.CtlEvent{Kind: core.CtlRevoke, Head: 0x80, Reason: core.ReasonInner, BufferedInsts: 3})
	tr.Finalize(20)

	sessions := tr.Sessions()
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(sessions))
	}
	s := sessions[0]
	if s.Promoted() {
		t.Error("revoked-while-buffering session reports promoted")
	}
	if s.EndReason != core.ReasonInner {
		t.Errorf("EndReason = %v, want inner", s.EndReason)
	}
	if s.BufferedInsts != 3 || s.GatedCycles != 0 {
		t.Errorf("buffered=%d gated=%d, want 3 and 0", s.BufferedInsts, s.GatedCycles)
	}
}

func TestFinalizeClosesOpenSession(t *testing.T) {
	tr := New(Config{RingSize: 64})
	tr.BeginCycle(10)
	tr.CtlEvent(core.CtlEvent{Kind: core.CtlBuffer, Head: 0x80, Tail: 0x90, Size: 4, BufferedInsts: 2})
	tr.BeginCycle(30)
	tr.CtlEvent(core.CtlEvent{Kind: core.CtlIteration, Head: 0x80, Size: 4, BufferedInsts: 6})
	tr.Finalize(42)

	sessions := tr.Sessions()
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(sessions))
	}
	s := sessions[0]
	if s.EndCycle != 42 || s.EndReason != core.ReasonNone {
		t.Errorf("finalized session: end=%d reason=%v", s.EndCycle, s.EndReason)
	}
	if s.BufferedInsts != 4 {
		t.Errorf("BufferedInsts = %d, want 4 (through last complete iteration)", s.BufferedInsts)
	}
	// Finalize is idempotent: a second call must not duplicate the session.
	tr.Finalize(42)
	if len(tr.Sessions()) != 1 {
		t.Errorf("double finalize duplicated the session")
	}
}

func TestInstLimitCapsLifecycleEvents(t *testing.T) {
	tr := New(Config{RingSize: 1024, InstLimit: 3})
	for seq := uint64(1); seq <= 10; seq++ {
		tr.InstDispatch(seq, 0x100, false)
		tr.InstIssue(seq, 0x100)
	}
	ev := tr.Events()
	if got := CountKind(ev, EvDispatch); got != 3 {
		t.Errorf("dispatch events = %d, want 3 (InstLimit)", got)
	}
	if got := CountKind(ev, EvIssue); got != 3 {
		t.Errorf("issue events = %d, want 3 (InstLimit)", got)
	}

	off := New(Config{RingSize: 64, InstLimit: -1})
	off.InstDispatch(1, 0x100, false)
	off.InstCommit(1, 0x100)
	if off.Total() != 0 {
		t.Errorf("InstLimit<0 still recorded %d events", off.Total())
	}
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 3, 1000, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Max() != 1000 {
		t.Errorf("count=%d max=%d", h.Count(), h.Max())
	}
	if want := float64(1+2+3+1000+5) / 5; h.Mean() != want {
		t.Errorf("mean = %f, want %f", h.Mean(), want)
	}

	var r Registry
	r.RegisterHistogram("h", &h)
	s := r.Snapshot()
	if got := s.Get("h.le_2"); got != 2 {
		t.Errorf("h.le_2 = %d, want 2 (cumulative: values 1 and 2)", got)
	}
	if got := s.Get("h.le_1024"); got != 5 {
		t.Errorf("h.le_1024 = %d, want 5", got)
	}
	if got := s.Get("h.count"); got != 5 {
		t.Errorf("h.count = %d, want 5", got)
	}
	if got := s.Get("h.max"); got != 1000 {
		t.Errorf("h.max = %d, want 1000", got)
	}
	// Buckets beyond the max observation are elided.
	for _, name := range s.Names() {
		if name == "h.le_4096" {
			t.Error("empty trailing bucket h.le_4096 not elided")
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(1 << 25) // beyond the largest finite bucket
	var r Registry
	r.RegisterHistogram("h", &h)
	s := r.Snapshot()
	if got := s.Get("h.le_inf"); got != 1 {
		t.Errorf("h.le_inf = %d, want 1", got)
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	var r Registry
	r.CounterVal("a", 7)
	r.Counter("b", func() uint64 { return 9 })
	r.Gauge("frac", func() float64 { return 0.5 })
	s := r.Snapshot()
	if s.Get("a") != 7 || s.Get("b") != 9 {
		t.Errorf("counters wrong: a=%d b=%d", s.Get("a"), s.Get("b"))
	}
	if got := s.Get("frac.ppm"); got != 500000 {
		t.Errorf("frac.ppm = %d, want 500000", got)
	}
}

// TestTypedSnapshotSorted pins TypedSnapshot's ordering contract: sorted by
// name within each kind, independent of registration order. The run ledger
// persists snapshots verbatim and diffs them across runs and processes, so
// two registries holding the same metrics must snapshot identically.
func TestTypedSnapshotSorted(t *testing.T) {
	var h Histogram
	h.Observe(3)
	build := func(names []string) *MetricsSnapshot {
		var r Registry
		for _, n := range names {
			r.CounterVal(n, uint64(len(n)))
			r.Gauge("g."+n, func() float64 { return 0.5 })
			r.RegisterHistogram("hist."+n, &h)
		}
		return r.TypedSnapshot()
	}
	fwd := build([]string{"sim.cycles", "iq.dispatches", "bpred.lookups", "reuse.detections"})
	rev := build([]string{"reuse.detections", "bpred.lookups", "iq.dispatches", "sim.cycles"})

	wantC := []string{"bpred.lookups", "iq.dispatches", "reuse.detections", "sim.cycles"}
	for i, c := range fwd.Counters {
		if c.Name != wantC[i] {
			t.Fatalf("counter %d = %q, want %q (sorted)", i, c.Name, wantC[i])
		}
	}
	for i := range fwd.Gauges {
		if fwd.Gauges[i].Name != "g."+wantC[i] {
			t.Errorf("gauge %d = %q, not sorted", i, fwd.Gauges[i].Name)
		}
	}
	for i := range fwd.Hists {
		if fwd.Hists[i].Name != "hist."+wantC[i] {
			t.Errorf("hist %d = %q, not sorted", i, fwd.Hists[i].Name)
		}
	}
	// Registration order must not leak into the snapshot.
	if !reflect.DeepEqual(fwd.Counters, rev.Counters) ||
		!reflect.DeepEqual(fwd.Gauges, rev.Gauges) ||
		!reflect.DeepEqual(fwd.Hists, rev.Hists) {
		t.Error("snapshots differ between registration orders")
	}
	// Counter values must still follow their names through the sort.
	for _, c := range fwd.Counters {
		if c.Value != uint64(len(c.Name)) {
			t.Errorf("%s = %d, want %d: value detached from its name by the sort", c.Name, c.Value, len(c.Name))
		}
	}
}

func TestWriteTraceJSONValidates(t *testing.T) {
	tr := New(Config{RingSize: 256})
	playSession(tr)
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, tr, 200); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("generated trace fails validation: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"loop-buffering", "code-reuse", "gated", "riq-state"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

// When the ring dropped early transitions the exporter must not fabricate
// state spans from an unknown starting state, and the file must still
// validate.
func TestWriteTraceJSONAfterRingDrop(t *testing.T) {
	tr := New(Config{RingSize: 4})
	playSession(tr) // gated cycles do not emit, but buffer/promote/exit do
	for i := 0; i < 8; i++ {
		tr.BeginCycle(uint64(160 + i))
		tr.Emit(EvIteration, 0x40, 1, 0)
	}
	if tr.Dropped() == 0 {
		t.Fatal("test expects ring drops")
	}
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, tr, 200); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("post-drop trace fails validation: %v", err)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"malformed", `{"traceEvents": [`, "malformed"},
		{"empty", `{"traceEvents": []}`, "no events"},
		{"no-phase", `{"traceEvents":[{"name":"x","ts":1}]}`, "no phase"},
		{"no-ts", `{"traceEvents":[{"name":"x","ph":"i"}]}`, "no timestamp"},
		{"negative-ts", `{"traceEvents":[{"name":"x","ph":"i","ts":-4}]}`, "negative ts"},
		{"non-monotone", `{"traceEvents":[{"name":"a","ph":"i","ts":5},{"name":"b","ph":"i","ts":2}]}`, "not monotone"},
		{"unbalanced-b", `{"traceEvents":[{"name":"a","ph":"B","ts":1}]}`, "unbalanced"},
		{"e-without-b", `{"traceEvents":[{"name":"a","ph":"E","ts":1}]}`, "E without matching B"},
		{"late-metadata", `{"traceEvents":[{"name":"a","ph":"i","ts":1},{"name":"m","ph":"M"}]}`, "after timed"},
	}
	for _, c := range cases {
		err := ValidateTrace(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: validation passed, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestValidateTraceAcceptsBalancedBE(t *testing.T) {
	in := `{"traceEvents":[
		{"name":"m","ph":"M"},
		{"name":"a","ph":"B","ts":1,"pid":1,"tid":0},
		{"name":"a","ph":"E","ts":3,"pid":1,"tid":0}]}`
	if err := ValidateTrace(strings.NewReader(in)); err != nil {
		t.Errorf("balanced B/E rejected: %v", err)
	}
}

func TestJSONLStreamAndDump(t *testing.T) {
	var stream bytes.Buffer
	bw := bufio.NewWriter(&stream)
	tr := New(Config{RingSize: 4})
	tr.Sink = JSONLSink(bw)
	playSession(tr)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	// The stream saw every event even though the ring only retains 4.
	gotLines := strings.Count(stream.String(), "\n")
	if uint64(gotLines) != tr.Total() {
		t.Errorf("stream has %d lines, tracer emitted %d", gotLines, tr.Total())
	}
	if !strings.Contains(stream.String(), `"kind":"promote"`) {
		t.Error("stream missing promote event")
	}

	var dump bytes.Buffer
	if err := WriteJSONL(&dump, tr); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(dump.String(), "\n"); n != 4 {
		t.Errorf("dump has %d lines, want 4 (ring capacity)", n)
	}
}

func TestSessionTableRendering(t *testing.T) {
	tr := New(Config{RingSize: 64})
	playSession(tr)
	tr.BeginCycle(160)
	tr.CtlEvent(core.CtlEvent{Kind: core.CtlBuffer, Head: 0x40, Tail: 0x50, Size: 5, BufferedInsts: 17})
	tr.Finalize(170)

	var buf bytes.Buffer
	WriteSessionTable(&buf, tr.Sessions())
	out := buf.String()
	if !strings.Contains(out, "reuse-exit") {
		t.Errorf("table missing reuse-exit reason:\n%s", out)
	}
	if !strings.Contains(out, "run-end") {
		t.Errorf("table missing run-end for finalized open session:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("table has %d lines, want header + 2 sessions", lines)
	}
}

// The duplicate-registration policy is last-wins with a single rendered
// line: re-registering "x" must replace the reader, never render twice
// (a double line would be an invalid Prometheus exposition downstream).
func TestRegistryDuplicateNameLastWins(t *testing.T) {
	r := &Registry{}
	r.CounterVal("x", 1)
	r.CounterVal("x", 2)
	r.Gauge("g", func() float64 { return 0.25 })
	r.Gauge("g", func() float64 { return 0.75 })
	var h1, h2 Histogram
	h1.Observe(1)
	h2.Observe(2)
	h2.Observe(4)
	r.RegisterHistogram("h", &h1)
	r.RegisterHistogram("h", &h2)

	s := r.Snapshot()
	if got := s.Get("x"); got != 2 {
		t.Errorf("x = %d, want 2 (last registration wins)", got)
	}
	if got := s.Get("g.ppm"); got != 750000 {
		t.Errorf("g.ppm = %d, want 750000", got)
	}
	if got := s.Get("h.count"); got != 2 {
		t.Errorf("h.count = %d, want 2 (replacement histogram)", got)
	}
	names := 0
	for _, n := range s.Names() {
		if n == "x" {
			names++
		}
	}
	if names != 1 {
		t.Errorf("counter x rendered %d times, want exactly once", names)
	}

	ts := r.TypedSnapshot()
	if len(ts.Counters) != 1 || ts.Counters[0].Value != 2 {
		t.Errorf("typed snapshot counters = %+v, want single x=2", ts.Counters)
	}
	if len(ts.Gauges) != 1 || ts.Gauges[0].Value != 0.75 {
		t.Errorf("typed snapshot gauges = %+v, want single g=0.75", ts.Gauges)
	}
	if len(ts.Hists) != 1 || ts.Hists[0].Count != 2 {
		t.Errorf("typed snapshot hists = %+v, want single h count=2", ts.Hists)
	}
}

func TestTypedSnapshotHistogramBuckets(t *testing.T) {
	r := &Registry{}
	var h Histogram
	for _, v := range []uint64{1, 2, 3, 700} {
		h.Observe(v)
	}
	r.RegisterHistogram("lat", &h)
	ts := r.TypedSnapshot()
	hp := ts.Hists[0]
	if hp.Count != 4 || hp.Sum != 706 || hp.Max != 700 {
		t.Fatalf("hist point = %+v", hp)
	}
	last := hp.Buckets[len(hp.Buckets)-1]
	if !last.IsInf || last.Count != 4 {
		t.Errorf("final bucket = %+v, want +Inf with full count", last)
	}
	var prev uint64
	for _, b := range hp.Buckets {
		if b.Count < prev {
			t.Errorf("buckets not cumulative: %+v", hp.Buckets)
		}
		prev = b.Count
	}
	// le=1 holds the single value 1; le=2 holds two values.
	if hp.Buckets[0].LE != 1 || hp.Buckets[0].Count != 1 {
		t.Errorf("bucket[0] = %+v, want le=1 count=1", hp.Buckets[0])
	}
	if hp.Buckets[1].LE != 2 || hp.Buckets[1].Count != 2 {
		t.Errorf("bucket[1] = %+v, want le=2 count=2", hp.Buckets[1])
	}
}

func TestMarshalEventMatchesSinkFormat(t *testing.T) {
	e := Event{Cycle: 9, Kind: EvPromote, PC: 0x40, A: 1, B: 2}
	var buf bytes.Buffer
	JSONLSink(&buf)(e)
	if got, want := buf.String(), string(MarshalEvent(e))+"\n"; got != want {
		t.Errorf("sink line %q != MarshalEvent %q", got, want)
	}
	if !strings.Contains(buf.String(), `"kind":"promote"`) {
		t.Errorf("encoded event missing kind: %s", buf.String())
	}
}

func TestSessionTableZeroSessions(t *testing.T) {
	var buf bytes.Buffer
	WriteSessionTable(&buf, nil)
	out := buf.String()
	if !strings.Contains(out, "no reuse sessions") {
		t.Errorf("empty log rendered %q, want explicit no-sessions line", out)
	}
	if strings.Contains(out, "end-reason") {
		t.Errorf("empty log rendered a bare header:\n%s", out)
	}
}

// TestAppendEventCanonical pins the hand-rolled AppendEvent encoder to the
// encoding/json rendering of jsonlEvent it replaced: every kind, every
// omitempty combination, byte for byte. Round-tripping through
// UnmarshalEvent guards against an encoder bug that json would tolerate.
func TestAppendEventCanonical(t *testing.T) {
	ref := func(e Event) []byte {
		je := jsonlEvent{Cycle: e.Cycle, Kind: e.Kind.String(), A: e.A, B: e.B}
		if e.PC != 0 {
			je.PC = fmt.Sprintf("0x%x", e.PC)
		}
		data, err := json.Marshal(je)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	var cases []Event
	for k := Kind(1); int(k) < len(kindNames); k++ {
		cases = append(cases,
			Event{Cycle: 0, Kind: k},
			Event{Cycle: 12345, Kind: k, PC: 0x4000cc},
			Event{Cycle: 1 << 40, Kind: k, A: 7},
			Event{Cycle: 99, Kind: k, PC: 0xdeadbeef, A: 1, B: 1 << 33},
			Event{Cycle: 1, Kind: k, B: 42},
		)
	}
	for _, e := range cases {
		got := AppendEvent(nil, e)
		if want := ref(e); !bytes.Equal(got, want) {
			t.Fatalf("AppendEvent(%+v) = %s, want %s", e, got, want)
		}
		back, err := UnmarshalEvent(got)
		if err != nil {
			t.Fatalf("round-trip %s: %v", got, err)
		}
		if back != e {
			t.Fatalf("round-trip %+v → %+v", e, back)
		}
	}
	// Appending to a non-empty prefix must not disturb it.
	pre := AppendEvent([]byte("x"), cases[0])
	if pre[0] != 'x' || !bytes.Equal(pre[1:], AppendEvent(nil, cases[0])) {
		t.Fatalf("AppendEvent clobbered its prefix: %s", pre)
	}
}

// TestHistogramObserveBucketing pins the bit-scan bucketing to the simple
// linear-walk definition it replaced: bucket i is the smallest with
// v <= 1<<i, overflow capped at histBuckets.
func TestHistogramObserveBucketing(t *testing.T) {
	linear := func(v uint64) int {
		i := 0
		for i < histBuckets && v > uint64(1)<<uint(i) {
			i++
		}
		return i
	}
	var vals []uint64
	for k := 0; k < 64; k++ {
		vals = append(vals, uint64(1)<<k-1, uint64(1)<<k, uint64(1)<<k+1)
	}
	vals = append(vals, 0, 3, 5, 7, 100, 1000, ^uint64(0))
	for _, v := range vals {
		var h Histogram
		h.Observe(v)
		want := linear(v)
		for i := range h.buckets {
			if (h.buckets[i] == 1) != (i == want) {
				t.Fatalf("Observe(%d): bucket %d = %d, want count in bucket %d only", v, i, h.buckets[i], want)
			}
		}
	}
}

// Package telemetry is the simulator's structured observability layer: a
// ring-buffered event tracer for the reuse-capable issue queue's state
// machine, a reuse-session audit log, a unified metrics registry, and
// exporters (Chrome/Perfetto trace-event JSON, JSONL event dumps, session
// tables).
//
// The contract with the hot path is strict zero cost when disabled: the
// pipeline holds a *Tracer that is nil by default, every tap is guarded by a
// single nil check (exactly like the existing OnCommit/OnCycle hooks), and
// nothing in this package is reachable from a disabled machine. When enabled,
// the tracer itself stays allocation-free in steady state: events are
// fixed-size structs written into a preallocated ring, sessions append only
// on state transitions (rare by construction — a transition means the loop
// capture machinery changed mode), and histograms are fixed bucket arrays.
// Only the optional JSONL streaming sink allocates, because it encodes.
package telemetry

import "reuseiq/internal/core"

// Kind enumerates event types. The zero value is invalid so that a cleared
// ring slot can never be mistaken for an event.
type Kind uint8

const (
	// EvBuffer: the controller entered Loop Buffering (PC = loop head,
	// A = loop tail, B = static size).
	EvBuffer Kind = iota + 1
	// EvPromote: Buffering -> Code Reuse; the fetch gate closes (PC = head).
	EvPromote
	// EvRevoke: Buffering -> Normal (PC = head, A = core.RevokeReason).
	EvRevoke
	// EvReuseExit: Code Reuse -> Normal; the fetch gate opens (PC = head).
	EvReuseExit
	// EvIteration: one loop iteration finished buffering (PC = head,
	// A = dynamic iteration size).
	EvIteration
	// EvNBLTHit: a detection was suppressed by the NBLT (PC = loop tail).
	EvNBLTHit
	// EvNBLTInsert: a loop registered as non-bufferable (PC = loop tail).
	EvNBLTInsert
	// EvMispredict: a resolved branch misprediction squashed the pipeline
	// (PC = branch, A = redirect target, B = branch seq).
	EvMispredict
	// EvChaosFlip: fault injection inverted a branch prediction (PC).
	EvChaosFlip
	// EvChaosStall: fault injection stalled fetch (A = stall cycles).
	EvChaosStall
	// EvChaosJitter: fault injection inflated a result latency
	// (A = extra cycles, B = seq).
	EvChaosJitter
	// EvChaosRevoke: fault injection forced a buffering revoke.
	EvChaosRevoke
	// EvDispatch: an instruction entered the window (PC, A = seq,
	// B = 1 when supplied by the reuse pointer). Only the first
	// Config.InstLimit sequence numbers are recorded.
	EvDispatch
	// EvIssue: instruction A issued (PC, subject to InstLimit).
	EvIssue
	// EvComplete: instruction A wrote back (PC, subject to InstLimit).
	EvComplete
	// EvCommit: instruction A committed (PC, subject to InstLimit).
	EvCommit
	// EvFastForward: the fast-forward engine skipped ahead analytically
	// (PC = loop head or fetch anchor, A = iterations skipped, B = cycles
	// skipped). Appended last so earlier kinds keep their wire values.
	EvFastForward
	// EvIdleSkip: the fast-forward engine jumped an event-driven idle gap
	// (A = cycles skipped). The synthetic annotation keeps a cycle-indexed
	// timeline (the flight recorder) from showing an unexplained hole where
	// no cycle was simulated. Appended after EvFastForward for the same
	// wire-value stability reason.
	EvIdleSkip
)

var kindNames = [...]string{
	"", "buffer", "promote", "revoke", "reuse-exit", "iteration",
	"nblt-hit", "nblt-insert", "mispredict", "chaos-flip", "chaos-stall",
	"chaos-jitter", "chaos-revoke", "dispatch", "issue", "complete", "commit",
	"fast-forward", "idle-skip",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// Event is one telemetry event. Fixed size, no pointers: emitting one is a
// ring-slot store, never an allocation.
type Event struct {
	Cycle uint64
	Kind  Kind
	PC    uint32
	A, B  uint64 // kind-specific payload (see the Kind constants)
}

// Config parameterizes a Tracer.
type Config struct {
	// RingSize bounds the retained event history (default 1<<16). Older
	// events are dropped, counted in Tracer.Dropped().
	RingSize int
	// InstLimit caps per-instruction lifecycle events (dispatch, issue,
	// complete, commit) to the first InstLimit sequence numbers, keeping
	// long traces dominated by the rare state-machine events rather than
	// the per-cycle instruction stream. Default 512; negative disables
	// instruction events entirely.
	InstLimit int
}

// Tracer records telemetry for one machine. Create with New, attach with
// pipeline.(*Machine).AttachTelemetry.
type Tracer struct {
	// Sink, when non-nil, receives every event synchronously as it is
	// emitted (before ring overwrite can drop it). Used for JSONL
	// streaming; the sink may allocate.
	//reuse:nilguard
	Sink func(Event)

	cycle     uint64
	ring      []Event
	next      int    // ring insertion point
	total     uint64 // events ever emitted
	instLimit uint64

	sessions sessionLog

	// Histograms (see registry.go). SessionCycles observes each closed
	// session's wall-clock length; IssueToCommit observes per-instruction
	// issue-to-commit latency.
	SessionCycles Histogram
	IssueToCommit Histogram
}

// New creates a tracer.
func New(cfg Config) *Tracer {
	if cfg.RingSize == 0 {
		cfg.RingSize = 1 << 16
	}
	if cfg.InstLimit == 0 {
		cfg.InstLimit = 512
	}
	t := &Tracer{ring: make([]Event, cfg.RingSize)}
	if cfg.InstLimit > 0 {
		t.instLimit = uint64(cfg.InstLimit)
	}
	return t
}

// InstSeqCap returns the exclusive sequence-number bound below which
// per-instruction lifecycle taps fire (instLimit is inclusive). The pipeline
// caches it so the per-instruction guard is one compare against a machine
// field rather than a load through the tracer pointer.
func (t *Tracer) InstSeqCap() uint64 {
	if t.instLimit == ^uint64(0) {
		return t.instLimit
	}
	return t.instLimit + 1
}

// BeginCycle stamps the cycle used by subsequent events. The pipeline calls
// it once per Step.
func (t *Tracer) BeginCycle(cycle uint64) { t.cycle = cycle }

// Emit records one event at the current cycle.
func (t *Tracer) Emit(k Kind, pc uint32, a, b uint64) {
	e := Event{Cycle: t.cycle, Kind: k, PC: pc, A: a, B: b}
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	t.total++
	if t.Sink != nil {
		t.Sink(e)
	}
}

// Total returns the number of events ever emitted.
func (t *Tracer) Total() uint64 { return t.total }

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t.total <= uint64(len(t.ring)) {
		return 0
	}
	return t.total - uint64(len(t.ring))
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	n := t.total
	if n > uint64(len(t.ring)) {
		n = uint64(len(t.ring))
	}
	out := make([]Event, 0, n)
	start := t.next - int(n)
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < int(n); i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// CtlEvent is the controller tap: install with ctl.Hook = tracer.CtlEvent
// (pipeline.AttachTelemetry does this). It translates controller events into
// trace events and drives the session audit log.
func (t *Tracer) CtlEvent(e core.CtlEvent) {
	switch e.Kind {
	case core.CtlBuffer:
		t.Emit(EvBuffer, e.Head, uint64(e.Tail), uint64(e.Size))
		t.sessions.open(t.cycle, e)
	case core.CtlPromote:
		t.Emit(EvPromote, e.Head, uint64(e.Tail), 0)
		t.sessions.promote(t.cycle)
	case core.CtlRevoke:
		t.Emit(EvRevoke, e.Head, uint64(e.Reason), 0)
		t.closeSession(e, e.Reason)
	case core.CtlReuseExit:
		t.Emit(EvReuseExit, e.Head, 0, 0)
		t.closeSession(e, core.ReasonReuseExit)
	case core.CtlIteration:
		t.Emit(EvIteration, e.Head, uint64(e.Size), 0)
		t.sessions.iteration(e)
	case core.CtlNBLTHit:
		t.Emit(EvNBLTHit, e.Tail, 0, 0)
	case core.CtlNBLTInsert:
		t.Emit(EvNBLTInsert, e.Tail, 0, 0)
	}
}

func (t *Tracer) closeSession(e core.CtlEvent, reason core.RevokeReason) {
	if s := t.sessions.close(t.cycle, e, reason); s != nil {
		t.SessionCycles.Observe(s.EndCycle - s.StartCycle)
	}
}

// GatedCycle attributes one front-end-gated cycle to the open session. The
// pipeline calls it exactly where it increments its global GatedCycles
// counter, so per-session totals reconcile with the aggregate by
// construction.
func (t *Tracer) GatedCycle() { t.sessions.gatedCycle() }

// ReuseSupplied attributes k reuse-pointer-supplied instances to the open
// session.
func (t *Tracer) ReuseSupplied(k int) { t.sessions.reuseSupplied(k) }

// FastForward records an analytic skip of `iterations` loop iterations
// covering `cycles` cycles, and bulk-attributes the gated cycles and
// reuse-supplied instances the span would have accrued to the open session,
// keeping session totals reconciled with the machine's global counters
// (which the fast-forward engine advances by the same amounts).
func (t *Tracer) FastForward(pc uint32, iterations, cycles, gated, reused uint64) {
	t.sessions.fastForward(gated, reused)
	t.Emit(EvFastForward, pc, iterations, cycles)
}

// IdleSkip records an event-driven skip of `cycles` provably inert cycles
// ending at the current cycle (the fast-forward engine's second lever). The
// session audit log needs no adjustment: idle gaps are only skipped outside
// gated reuse spans.
func (t *Tracer) IdleSkip(cycles uint64) { t.Emit(EvIdleSkip, 0, cycles, 0) }

// Mispredict records a resolved misprediction squash.
func (t *Tracer) Mispredict(pc uint32, target uint32, seq uint64) {
	t.Emit(EvMispredict, pc, uint64(target), seq)
}

// ChaosFlip, ChaosStall, ChaosJitter and ChaosRevoke record fault
// injections.
func (t *Tracer) ChaosFlip(pc uint32)               { t.Emit(EvChaosFlip, pc, 0, 0) }
func (t *Tracer) ChaosStall(cycles int)             { t.Emit(EvChaosStall, 0, uint64(cycles), 0) }
func (t *Tracer) ChaosJitter(extra int, seq uint64) { t.Emit(EvChaosJitter, 0, uint64(extra), seq) }
func (t *Tracer) ChaosRevoke()                      { t.Emit(EvChaosRevoke, 0, 0, 0) }

// InstDispatch, InstIssue, InstComplete and InstCommit record per-instruction
// lifecycle events for the first InstLimit sequence numbers.
func (t *Tracer) InstDispatch(seq uint64, pc uint32, reused bool) {
	if seq > t.instLimit {
		return
	}
	var r uint64
	if reused {
		r = 1
	}
	t.Emit(EvDispatch, pc, seq, r)
}

func (t *Tracer) InstIssue(seq uint64, pc uint32) {
	if seq > t.instLimit {
		return
	}
	t.Emit(EvIssue, pc, seq, 0)
}

func (t *Tracer) InstComplete(seq uint64, pc uint32) {
	if seq > t.instLimit {
		return
	}
	t.Emit(EvComplete, pc, seq, 0)
}

func (t *Tracer) InstCommit(seq uint64, pc uint32) {
	if seq > t.instLimit {
		return
	}
	t.Emit(EvCommit, pc, seq, 0)
}

// CommitLatency observes one committed instruction's issue-to-commit latency.
func (t *Tracer) CommitLatency(cycles uint64) { t.IssueToCommit.Observe(cycles) }

// Finalize closes a session left open at the end of the run (loop still
// buffering or reusing when HALT committed). Call once, after the machine
// stops; cycle is the final cycle number.
func (t *Tracer) Finalize(cycle uint64) {
	if s := t.sessions.finalize(cycle); s != nil {
		t.SessionCycles.Observe(s.EndCycle - s.StartCycle)
	}
}

// Sessions returns the audit log: one record per captured loop, in capture
// order. Call Finalize first so a still-open session is included.
func (t *Tracer) Sessions() []Session { return t.sessions.log }

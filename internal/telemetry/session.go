package telemetry

import "reuseiq/internal/core"

// Session is one reuse-session audit record: the full lifetime of one loop
// capture, from the cycle Loop Buffering was entered to the cycle the
// controller returned to Normal (or the run ended). A session that was
// revoked before promotion has PromoteCycle == 0 and zero gated cycles.
type Session struct {
	ID         int
	Head, Tail uint32 // loop bounds (head = loop-head PC)
	StaticSize int    // static loop size in instructions

	StartCycle   uint64 // Loop Buffering entered
	PromoteCycle uint64 // Code Reuse entered; 0 if never promoted
	EndCycle     uint64 // back to Normal (or final cycle for open sessions)

	Iterations    int    // complete iterations buffered
	BufferedInsts uint64 // instructions buffered (classified at dispatch)
	ReusedInsts   uint64 // instances supplied by the reuse pointer
	GatedCycles   uint64 // cycles the front end spent gated in this session

	// EndReason says how the session ended: a buffering revoke reason,
	// core.ReasonReuseExit for a normal reuse exit, or core.ReasonNone for
	// a session still open when the run ended.
	EndReason core.RevokeReason
}

// Promoted reports whether the session reached Code Reuse.
func (s Session) Promoted() bool { return s.PromoteCycle != 0 }

// sessionLog tracks the currently open session and the closed history.
type sessionLog struct {
	log    []Session
	cur    Session
	active bool
	// baseBuffered is the controller's cumulative buffered-instruction
	// count when the session opened; the delta at close is the session's
	// BufferedInsts.
	baseBuffered uint64
}

func (l *sessionLog) open(cycle uint64, e core.CtlEvent) {
	l.cur = Session{
		ID:         len(l.log),
		Head:       e.Head,
		Tail:       e.Tail,
		StaticSize: e.Size,
		StartCycle: cycle,
	}
	l.baseBuffered = e.BufferedInsts
	l.active = true
}

func (l *sessionLog) promote(cycle uint64) {
	if l.active {
		l.cur.PromoteCycle = cycle
	}
}

func (l *sessionLog) iteration(e core.CtlEvent) {
	if l.active {
		l.cur.Iterations++
		// Keep the running count current so a session still open at run
		// end (closed by finalize, which sees no controller event) reports
		// the instructions buffered up to its last complete iteration.
		l.cur.BufferedInsts = e.BufferedInsts - l.baseBuffered
	}
}

func (l *sessionLog) gatedCycle() {
	if l.active {
		l.cur.GatedCycles++
	}
}

func (l *sessionLog) reuseSupplied(k int) {
	if l.active {
		l.cur.ReusedInsts += uint64(k)
	}
}

// fastForward bulk-attributes a fast-forwarded span to the open session:
// gated cycles and reuse-supplied instances the skipped cycles would have
// accrued one at a time. Keeps the per-session totals reconciled with the
// machine's global counters, which the engine advances by the same amounts.
func (l *sessionLog) fastForward(gated, reused uint64) {
	if l.active {
		l.cur.GatedCycles += gated
		l.cur.ReusedInsts += reused
	}
}

func (l *sessionLog) close(cycle uint64, e core.CtlEvent, reason core.RevokeReason) *Session {
	if !l.active {
		return nil
	}
	l.cur.EndCycle = cycle
	l.cur.EndReason = reason
	l.cur.BufferedInsts = e.BufferedInsts - l.baseBuffered
	l.active = false
	l.log = append(l.log, l.cur)
	return &l.log[len(l.log)-1]
}

func (l *sessionLog) finalize(cycle uint64) *Session {
	if !l.active {
		return nil
	}
	l.cur.EndCycle = cycle
	l.cur.EndReason = core.ReasonNone
	l.active = false
	l.log = append(l.log, l.cur)
	return &l.log[len(l.log)-1]
}

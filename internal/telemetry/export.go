package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"reuseiq/internal/core"
)

// Chrome trace-event JSON export (the format ui.perfetto.dev and
// chrome://tracing load). One simulated cycle maps to one microsecond of
// trace time. Tracks (tids) are:
//
//	0  riq-state   X slices: normal / loop-buffering / code-reuse spans
//	1  fetch-gate  X slices while the front end is gated
//	2  dispatch    per-instruction dispatch->issue slices (first InstLimit)
//	3  execute     per-instruction issue->writeback slices
//	4  commit      per-instruction instants at commit
//	5  events      instants: revokes, NBLT activity, mispredicts, chaos
//
// Only complete (ph "X") and instant (ph "i") events are emitted, plus "M"
// metadata, so begin/end balance holds trivially and the file is valid even
// when the ring dropped events.
const (
	tidState = iota
	tidGate
	tidDispatch
	tidExecute
	tidCommit
	tidEvents
)

// traceEvent is one Chrome trace-event object.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// instLife accumulates one instruction's lifecycle while converting events.
type instLife struct {
	pc                                uint32
	reused                            bool
	dispatch, issue, complete, commit uint64
	hasDispatch                       bool
}

// WriteTraceJSON renders the tracer's retained events as Chrome trace-event
// JSON. finalCycle bounds the last open state span.
func WriteTraceJSON(w io.Writer, t *Tracer, finalCycle uint64) error {
	return writeTrace(w, t.Events(), traceOpts{final: finalCycle, knownStart: t.Dropped() == 0})
}

// WriteTraceWindow renders the events falling inside the cycle window
// [from, to] as Chrome trace-event JSON (the flight recorder's incident
// export). Timestamps stay absolute cycles — no rebasing — so a Perfetto
// timestamp in the exported file maps 1:1 back onto a debugger `seek`
// target; a "trace_window" metadata record pins the window bounds and the
// zero clock offset so validators can verify that correspondence.
func WriteTraceWindow(w io.Writer, events []Event, from, to uint64) error {
	kept := make([]Event, 0, len(events))
	for _, e := range events {
		if e.Cycle >= from && e.Cycle <= to {
			kept = append(kept, e)
		}
	}
	win := [2]uint64{from, to}
	return writeTrace(w, kept, traceOpts{final: to, knownStart: from == 0, window: &win})
}

// traceOpts parameterizes the shared renderer behind WriteTraceJSON and
// WriteTraceWindow.
type traceOpts struct {
	final      uint64     // bound for the last open state/gate span
	knownStart bool       // the RIQ state before the first event is known (Normal)
	window     *[2]uint64 // emit a trace_window metadata record
}

func writeTrace(w io.Writer, events []Event, opts traceOpts) error {
	finalCycle := opts.final
	out := make([]traceEvent, 0, len(events)+16)

	meta := func(tid int, name string) {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(tidState, "riq-state")
	meta(tidGate, "fetch-gate")
	meta(tidDispatch, "dispatch")
	meta(tidExecute, "execute")
	meta(tidCommit, "commit")
	meta(tidEvents, "events")
	out = append(out, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "reusesim"},
	})
	if opts.window != nil {
		out = append(out, traceEvent{
			Name: "trace_window", Ph: "M", Pid: 1,
			Args: map[string]any{
				"start_cycle":  opts.window[0],
				"end_cycle":    opts.window[1],
				"cycle_offset": uint64(0),
			},
		})
	}

	span := func(tid int, name string, from, to uint64, args map[string]any) {
		dur := uint64(1)
		if to > from {
			dur = to - from
		}
		out = append(out, traceEvent{Name: name, Cat: "riq", Ph: "X",
			Ts: from, Dur: dur, Pid: 1, Tid: tid, Args: args})
	}
	instant := func(tid int, name string, cycle uint64, args map[string]any) {
		out = append(out, traceEvent{Name: name, Cat: "riq", Ph: "i",
			Ts: cycle, Pid: 1, Tid: tid, S: "t", Args: args})
	}

	// State and gate tracks, reconstructed from the transition events. The
	// ring may have dropped the run's earliest events; spans then start at
	// the first retained transition rather than cycle zero.
	state := core.Normal
	stateStart := uint64(0)
	gateStart := uint64(0)
	gateKnown := false       // a promote was seen, so the gate span has a start
	known := opts.knownStart // state before the first retained event is known
	insts := map[uint64]*instLife{}

	closeState := func(to core.State, cycle uint64, head uint32) {
		if known {
			span(tidState, state.String(), stateStart, cycle,
				map[string]any{"head": fmt.Sprintf("0x%x", head)})
		}
		known = true
		state = to
		stateStart = cycle
	}

	for _, e := range events {
		switch e.Kind {
		case EvBuffer:
			closeState(core.Buffering, e.Cycle, e.PC)
		case EvPromote:
			closeState(core.Reuse, e.Cycle, e.PC)
			gateStart, gateKnown = e.Cycle, true
		case EvRevoke:
			closeState(core.Normal, e.Cycle, e.PC)
			instant(tidEvents, "revoke:"+core.RevokeReason(e.A).String(), e.Cycle,
				map[string]any{"head": fmt.Sprintf("0x%x", e.PC)})
		case EvReuseExit:
			closeState(core.Normal, e.Cycle, e.PC)
			if gateKnown {
				span(tidGate, "gated", gateStart, e.Cycle,
					map[string]any{"head": fmt.Sprintf("0x%x", e.PC)})
				gateKnown = false
			}
		case EvIteration:
			instant(tidEvents, "iteration", e.Cycle,
				map[string]any{"size": e.A})
		case EvNBLTHit:
			instant(tidEvents, "nblt-hit", e.Cycle,
				map[string]any{"tail": fmt.Sprintf("0x%x", e.PC)})
		case EvNBLTInsert:
			instant(tidEvents, "nblt-insert", e.Cycle,
				map[string]any{"tail": fmt.Sprintf("0x%x", e.PC)})
		case EvMispredict:
			instant(tidEvents, "mispredict", e.Cycle, map[string]any{
				"pc": fmt.Sprintf("0x%x", e.PC), "target": fmt.Sprintf("0x%x", e.A)})
		case EvChaosFlip, EvChaosStall, EvChaosJitter, EvChaosRevoke:
			instant(tidEvents, e.Kind.String(), e.Cycle, nil)
		case EvFastForward:
			instant(tidEvents, "fast-forward", e.Cycle, map[string]any{
				"iterations": e.A, "cycles": e.B})
		case EvIdleSkip:
			instant(tidEvents, "idle-skip", e.Cycle, map[string]any{
				"cycles": e.A})
		case EvDispatch:
			insts[e.A] = &instLife{pc: e.PC, reused: e.B == 1,
				dispatch: e.Cycle, hasDispatch: true}
		case EvIssue:
			if l := insts[e.A]; l != nil {
				l.issue = e.Cycle
			}
		case EvComplete:
			if l := insts[e.A]; l != nil {
				l.complete = e.Cycle
			}
		case EvCommit:
			if l := insts[e.A]; l != nil {
				l.commit = e.Cycle
			}
		}
	}
	// Close the final state span and a still-gated gate span.
	if known && finalCycle > stateStart {
		span(tidState, state.String(), stateStart, finalCycle, nil)
		if state == core.Reuse && gateKnown {
			span(tidGate, "gated", gateStart, finalCycle, nil)
		}
	}

	// Instruction tracks, in seq order for deterministic output.
	seqs := make([]uint64, 0, len(insts))
	for seq := range insts {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		l := insts[seq]
		if !l.hasDispatch {
			continue
		}
		name := fmt.Sprintf("pc=0x%x", l.pc)
		args := map[string]any{"seq": seq}
		if l.reused {
			args["reused"] = true
		}
		if l.issue > 0 {
			span(tidDispatch, name, l.dispatch, l.issue, args)
			if l.complete > 0 {
				span(tidExecute, name, l.issue, l.complete, args)
			}
		} else {
			span(tidDispatch, name, l.dispatch, l.dispatch+1, args)
		}
		if l.commit > 0 {
			instant(tidCommit, name, l.commit, args)
		}
	}

	// Perfetto tolerates any order, but monotone timestamps make the file
	// diffable and let the validator check ordering cheaply. Metadata (ts
	// 0) sorts first.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Ph == "M" != (out[j].Ph == "M") {
			return out[i].Ph == "M"
		}
		return out[i].Ts < out[j].Ts
	})

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// jsonlEvent is the JSONL dump encoding of one Event.
type jsonlEvent struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	PC    string `json:"pc,omitempty"`
	A     uint64 `json:"a,omitempty"`
	B     uint64 `json:"b,omitempty"`
}

// MarshalEvent renders one event in the canonical JSON encoding shared by
// JSONLSink, WriteJSONL and the obs SSE stream (no trailing newline).
func MarshalEvent(e Event) []byte { return AppendEvent(nil, e) }

// AppendEvent appends MarshalEvent's exact bytes to dst and returns the
// extended slice — the allocation-free path for high-rate sinks (the flight
// recorder streams every event through this with a reused scratch buffer).
// TestAppendEventCanonical pins byte equality with the encoding/json
// rendering of jsonlEvent.
//
//reuse:deterministic
func AppendEvent(dst []byte, e Event) []byte {
	dst = append(dst, `{"cycle":`...)
	dst = strconv.AppendUint(dst, e.Cycle, 10)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, e.Kind.String()...)
	dst = append(dst, '"')
	if e.PC != 0 {
		dst = append(dst, `,"pc":"0x`...)
		dst = strconv.AppendUint(dst, uint64(e.PC), 16)
		dst = append(dst, '"')
	}
	if e.A != 0 {
		dst = append(dst, `,"a":`...)
		dst = strconv.AppendUint(dst, e.A, 10)
	}
	if e.B != 0 {
		dst = append(dst, `,"b":`...)
		dst = strconv.AppendUint(dst, e.B, 10)
	}
	return append(dst, '}')
}

// ParseKind maps a canonical kind name (Kind.String) back to its Kind.
func ParseKind(name string) (Kind, bool) {
	for i := 1; i < len(kindNames); i++ {
		if kindNames[i] == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// UnmarshalEvent parses one canonical JSON event object (the inverse of
// MarshalEvent). Tools that re-read persisted event streams — the flight
// recorder's segments, -events dumps — round-trip through this.
func UnmarshalEvent(data []byte) (Event, error) {
	var je jsonlEvent
	if err := json.Unmarshal(data, &je); err != nil {
		return Event{}, err
	}
	k, ok := ParseKind(je.Kind)
	if !ok {
		return Event{}, fmt.Errorf("telemetry: unknown event kind %q", je.Kind)
	}
	e := Event{Cycle: je.Cycle, Kind: k, A: je.A, B: je.B}
	if je.PC != "" {
		pc, err := strconv.ParseUint(strings.TrimPrefix(je.PC, "0x"), 16, 32)
		if err != nil {
			return Event{}, fmt.Errorf("telemetry: bad event pc %q: %w", je.PC, err)
		}
		e.PC = uint32(pc)
	}
	return e, nil
}

// JSONLSink returns a Sink that streams each event as one JSON line to w.
// Install it on Tracer.Sink before the run; the caller owns flushing/closing
// of w (wrap in a bufio.Writer for throughput and call Flush at the end).
func JSONLSink(w io.Writer) func(Event) {
	return func(e Event) {
		line := append(MarshalEvent(e), '\n')
		_, _ = w.Write(line)
	}
}

// WriteJSONL dumps the tracer's retained events to w, one JSON object per
// line (the post-hoc variant of JSONLSink).
func WriteJSONL(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	sink := JSONLSink(bw)
	for _, e := range t.Events() {
		sink(e)
	}
	return bw.Flush()
}

// WriteSessionTable renders the reuse-session audit log as an aligned text
// table. An empty log renders an explicit marker line rather than a bare
// header, so a pipeline that never captured a loop is unmistakable.
func WriteSessionTable(w io.Writer, sessions []Session) {
	if len(sessions) == 0 {
		fmt.Fprintln(w, "no reuse sessions (the controller never entered Loop Buffering)")
		return
	}
	fmt.Fprintf(w, "%4s %10s %6s %10s %10s %6s %9s %9s %8s  %s\n",
		"id", "head", "size", "start", "end", "iters", "buffered", "reused", "gated", "end-reason")
	for _, s := range sessions {
		reason := s.EndReason.String()
		if s.EndReason == core.ReasonNone {
			reason = "run-end"
		}
		fmt.Fprintf(w, "%4d 0x%08x %6d %10d %10d %6d %9d %9d %8d  %s\n",
			s.ID, s.Head, s.StaticSize, s.StartCycle, s.EndCycle,
			s.Iterations, s.BufferedInsts, s.ReusedInsts, s.GatedCycles, reason)
	}
}

// ValidateTrace checks that r holds well-formed Chrome trace-event JSON:
// every event has a phase and a non-negative timestamp, timestamps are
// monotone non-decreasing (metadata first), and "B"/"E" begin/end events are
// balanced per (pid, tid). It is the gate behind `make telemetry-check`.
func ValidateTrace(r io.Reader) error {
	var f struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Pid  int      `json:"pid"`
			Tid  int      `json:"tid"`
			Dur  float64  `json:"dur"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("telemetry: trace JSON malformed: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("telemetry: trace has no events")
	}
	type track struct{ pid, tid int }
	depth := map[track]int{}
	lastTs := -1.0
	inMeta := true
	for i, e := range f.TraceEvents {
		switch e.Ph {
		case "":
			return fmt.Errorf("telemetry: event %d (%q) has no phase", i, e.Name)
		case "M":
			if !inMeta {
				return fmt.Errorf("telemetry: metadata event %d after timed events", i)
			}
			continue
		}
		inMeta = false
		if e.Ts == nil {
			return fmt.Errorf("telemetry: event %d (%q) has no timestamp", i, e.Name)
		}
		ts := *e.Ts
		if ts < 0 {
			return fmt.Errorf("telemetry: event %d (%q) has negative ts %g", i, e.Name, ts)
		}
		if ts < lastTs {
			return fmt.Errorf("telemetry: event %d (%q) ts %g < previous %g (not monotone)",
				i, e.Name, ts, lastTs)
		}
		lastTs = ts
		tr := track{e.Pid, e.Tid}
		switch e.Ph {
		case "B":
			depth[tr]++
		case "E":
			depth[tr]--
			if depth[tr] < 0 {
				return fmt.Errorf("telemetry: event %d (%q): E without matching B on pid=%d tid=%d",
					i, e.Name, e.Pid, e.Tid)
			}
		case "X":
			if e.Dur < 0 {
				return fmt.Errorf("telemetry: event %d (%q) has negative dur", i, e.Name)
			}
		}
	}
	for tr, d := range depth {
		if d != 0 {
			return fmt.Errorf("telemetry: %d unbalanced B events on pid=%d tid=%d", d, tr.pid, tr.tid)
		}
	}
	return nil
}

// ValidateTraceWindow checks the extra contract of a flight-recorder window
// export (WriteTraceWindow): a "trace_window" metadata record must be
// present with a zero cycle offset (the seek-by-Perfetto-timestamp
// guarantee), and every timed event must fall inside its declared
// [start_cycle, end_cycle] bounds — slice durations may clamp at the end
// bound but never spill past it.
func ValidateTraceWindow(r io.Reader) error {
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("telemetry: trace JSON malformed: %w", err)
	}
	var start, end float64
	found := false
	for _, e := range f.TraceEvents {
		if e.Ph != "M" || e.Name != "trace_window" {
			continue
		}
		found = true
		get := func(key string) (float64, error) {
			v, ok := e.Args[key].(float64)
			if !ok {
				return 0, fmt.Errorf("telemetry: trace_window lacks numeric %q", key)
			}
			return v, nil
		}
		var err error
		if start, err = get("start_cycle"); err != nil {
			return err
		}
		if end, err = get("end_cycle"); err != nil {
			return err
		}
		off, err := get("cycle_offset")
		if err != nil {
			return err
		}
		if off != 0 {
			return fmt.Errorf("telemetry: trace_window cycle_offset = %g, want 0 (timestamps must equal cycles)", off)
		}
	}
	if !found {
		return fmt.Errorf("telemetry: no trace_window metadata record (not a window export?)")
	}
	if end < start {
		return fmt.Errorf("telemetry: trace_window bounds inverted: [%g, %g]", start, end)
	}
	for i, e := range f.TraceEvents {
		if e.Ph == "M" || e.Ts == nil {
			continue
		}
		if *e.Ts < start || *e.Ts > end {
			return fmt.Errorf("telemetry: event %d (%q) ts %g outside window [%g, %g]",
				i, e.Name, *e.Ts, start, end)
		}
		if e.Ph == "X" && *e.Ts+e.Dur > end {
			return fmt.Errorf("telemetry: event %d (%q) spills past the window end (%g+%g > %g)",
				i, e.Name, *e.Ts, e.Dur, end)
		}
	}
	return nil
}

// CountKind returns how many retained events have the given kind (helper for
// tests and the trace checker).
func CountKind(events []Event, k Kind) int {
	n := 0
	for _, e := range events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Snapshot support: an exported state image of the loop cache with a
// validating importer. The valid-PC set is serialized as a sorted slice so
// the image is deterministic regardless of map iteration order.
package altfe

import "fmt"

// LoopCacheState is the serializable image of a LoopCache.
type LoopCacheState struct {
	State    uint8
	Head     uint32
	Tail     uint32
	ValidPCs []uint32 // strictly ascending

	//reuse:nodigest monotonic statistics, extrapolated across a skip by the fast-forward engine
	Supplies, Fills, Detects, Exits uint64
}

// ExportState returns a deep copy of the loop cache's state.
func (lc *LoopCache) ExportState() LoopCacheState {
	st := LoopCacheState{
		State:    uint8(lc.state),
		Head:     lc.head,
		Tail:     lc.tail,
		Supplies: lc.Supplies, Fills: lc.Fills, Detects: lc.Detects, Exits: lc.Exits,
	}
	// The loop bounds span at most cfg.Entries instructions, so walking
	// [head,tail] yields the valid set already sorted.
	if len(lc.valid) > 0 {
		for pc := lc.head; pc <= lc.tail; pc += 4 {
			if lc.valid[pc] {
				st.ValidPCs = append(st.ValidPCs, pc)
			}
		}
	}
	return st
}

// ImportState overwrites the loop cache with st after validation.
func (lc *LoopCache) ImportState(st LoopCacheState) error {
	if st.State > uint8(lcActive) {
		return fmt.Errorf("altfe: loop cache state: invalid state %d", st.State)
	}
	if len(st.ValidPCs) > lc.cfg.Entries {
		return fmt.Errorf("altfe: loop cache state: %d valid PCs for %d entries",
			len(st.ValidPCs), lc.cfg.Entries)
	}
	for i, pc := range st.ValidPCs {
		if i > 0 && pc <= st.ValidPCs[i-1] {
			return fmt.Errorf("altfe: loop cache state: valid PCs not strictly ascending at %d", i)
		}
		if pc < st.Head || pc > st.Tail {
			return fmt.Errorf("altfe: loop cache state: valid PC 0x%x outside [0x%x,0x%x]",
				pc, st.Head, st.Tail)
		}
	}
	lc.state = lcState(st.State)
	lc.head, lc.tail = st.Head, st.Tail
	clear(lc.valid)
	for _, pc := range st.ValidPCs {
		lc.valid[pc] = true
	}
	lc.Supplies, lc.Fills, lc.Detects, lc.Exits = st.Supplies, st.Fills, st.Detects, st.Exits
	return nil
}

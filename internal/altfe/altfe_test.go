package altfe

import (
	"testing"

	"reuseiq/internal/isa"
)

func sbb(pc, target uint32) isa.Inst {
	off := (int32(target) - int32(pc) - 4) / 4
	return isa.Inst{Op: isa.OpBNE, Rs: 2, Imm: off}
}

func addi() isa.Inst { return isa.Inst{Op: isa.OpADDI, Rt: 2, Rs: 2, Imm: 1} }

const base = 0x0040_0000

// runIteration feeds one loop iteration [head..tail] into the cache,
// predicting the tail branch as predTaken, and returns how many fetches were
// supplied by the buffer.
func runIteration(lc *LoopCache, head, tail uint32, predTaken bool) int {
	supplied := 0
	for pc := head; pc <= tail; pc += 4 {
		if lc.Supplying(pc) {
			supplied++
		}
		in := addi()
		taken := false
		if pc == tail {
			in = sbb(pc, head)
			taken = predTaken
		}
		lc.Observe(pc, in, taken)
	}
	return supplied
}

func TestLoopCacheFillThenSupply(t *testing.T) {
	lc := NewLoopCache(LoopCacheConfig{Entries: 32})
	head, tail := uint32(base), uint32(base+4*5)

	// Iteration 1: detection at the sbb.
	if got := runIteration(lc, head, tail, true); got != 0 {
		t.Fatalf("supplied %d during detection iteration", got)
	}
	if lc.Detects != 1 || lc.state != lcFill {
		t.Fatalf("detect failed: %+v", lc)
	}
	// Iteration 2: fill.
	if got := runIteration(lc, head, tail, true); got != 0 {
		t.Fatalf("supplied %d during fill iteration", got)
	}
	if !lc.Active() {
		t.Fatal("not active after fill")
	}
	if lc.Fills != 6 {
		t.Fatalf("fills = %d, want 6", lc.Fills)
	}
	// Iteration 3+: supply everything.
	if got := runIteration(lc, head, tail, true); got != 6 {
		t.Fatalf("supplied %d in active iteration, want 6", got)
	}
	// Final iteration: sbb predicted not taken exits supply mode.
	runIteration(lc, head, tail, false)
	if lc.Active() {
		t.Fatal("still active after loop exit")
	}
	if lc.Exits == 0 {
		t.Fatal("exit not counted")
	}
}

func TestLoopCacheTooBigLoopIgnored(t *testing.T) {
	lc := NewLoopCache(LoopCacheConfig{Entries: 4})
	tail := uint32(base + 4*10) // 11-instruction loop, 4-entry buffer
	lc.Observe(tail, sbb(tail, base), true)
	if lc.Detects != 0 || lc.state != lcIdle {
		t.Fatal("oversized loop detected")
	}
}

func TestLoopCacheInnerFlowAbandonsFill(t *testing.T) {
	lc := NewLoopCache(LoopCacheConfig{Entries: 32})
	head, tail := uint32(base), uint32(base+4*8)
	lc.Observe(tail, sbb(tail, head), true) // detect
	// During fill, an inner backward branch appears.
	lc.Observe(head, addi(), false)
	inner := uint32(base + 4*4)
	lc.Observe(inner, sbb(inner, head+4), true)
	if lc.state != lcIdle {
		t.Fatal("inner change of flow did not abandon the fill")
	}
}

func TestLoopCacheRedirectResets(t *testing.T) {
	lc := NewLoopCache(LoopCacheConfig{Entries: 32})
	head, tail := uint32(base), uint32(base+4*3)
	runIteration(lc, head, tail, true)
	runIteration(lc, head, tail, true)
	if !lc.Active() {
		t.Fatal("not active")
	}
	lc.OnRedirect()
	if lc.Active() || lc.Supplying(head) {
		t.Fatal("redirect did not reset the buffer")
	}
}

func TestLoopCacheLeavingLoopDuringFill(t *testing.T) {
	lc := NewLoopCache(LoopCacheConfig{Entries: 32})
	head, tail := uint32(base), uint32(base+4*6)
	lc.Observe(tail, sbb(tail, head), true) // detect
	lc.Observe(head, addi(), false)         // start filling
	lc.Observe(tail+400, addi(), false)     // flow leaves the loop
	if lc.state != lcIdle {
		t.Fatal("leaving the loop did not reset the fill")
	}
}

func TestLoopCacheDefaultSize(t *testing.T) {
	lc := NewLoopCache(LoopCacheConfig{})
	if lc.cfg.Entries != 32 {
		t.Errorf("default entries = %d", lc.cfg.Entries)
	}
}

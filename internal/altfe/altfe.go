// Package altfe implements the two classes of prior-art front-end power
// mechanisms the paper positions itself against (Section 1):
//
//   - a filter cache (Kin et al. [9], Tang et al. [14]): a tiny L0
//     instruction cache between the datapath and L1I that captures tight
//     spatial/temporal locality, trading a miss-penalty cycle for cheaper
//     hit energy;
//   - a dynamic loop cache (Lee, Moyer, Arends [10]; Anderson & Agarwala
//     [1]): a small instruction buffer that detects short backward branches,
//     fills during the next loop iteration, and then supplies instructions
//     itself so the L1 instruction cache can idle. Unlike the paper's
//     mechanism it needs a dedicated buffer, and decode and branch
//     prediction keep running.
//
// Both integrate into the pipeline's fetch stage and let the benchmark
// harness compare the paper's reuse-capable issue queue against its
// alternatives on equal terms.
package altfe

import "reuseiq/internal/isa"

// LoopCacheConfig sizes the dynamic loop cache.
type LoopCacheConfig struct {
	// Entries is the number of instructions the buffer can hold.
	Entries int
}

// lcState is the loop cache controller state (idle/fill/active), following
// Lee-Moyer-Arends: a short backward branch (sbb) triggers FILL on its next
// taken execution; reaching the sbb again while filling switches to ACTIVE,
// where instructions are supplied from the buffer until any change of flow
// other than the sbb, or the sbb falling through.
type lcState uint8

const (
	lcIdle lcState = iota
	lcFill
	lcActive
)

// LoopCache is the dynamic loop cache.
type LoopCache struct {
	//reuse:transient configuration; fixed at construction and fingerprinted by the snapshot layer's ConfigHash
	cfg   LoopCacheConfig
	state lcState

	head, tail uint32 // loop bounds (start and sbb address)
	valid      map[uint32]bool

	// Activity counters for the power model and reports.
	Supplies uint64 // instructions delivered from the buffer
	Fills    uint64 // instructions written into the buffer
	Detects  uint64
	Exits    uint64
}

// NewLoopCache creates an empty loop cache.
func NewLoopCache(cfg LoopCacheConfig) *LoopCache {
	if cfg.Entries <= 0 {
		cfg.Entries = 32
	}
	return &LoopCache{cfg: cfg, valid: map[uint32]bool{}}
}

// Supplying reports whether pc would be delivered from the loop cache this
// fetch (saving the L1I access).
func (lc *LoopCache) Supplying(pc uint32) bool {
	return lc.state == lcActive && lc.valid[pc]
}

// Observe feeds one fetched instruction (with its predicted direction) into
// the controller. It must be called for every fetched instruction, after
// Supplying.
func (lc *LoopCache) Observe(pc uint32, in isa.Inst, predTaken bool) {
	supplied := lc.Supplying(pc)
	if supplied {
		lc.Supplies++
	}

	switch lc.state {
	case lcFill:
		if pc >= lc.head && pc <= lc.tail {
			if !lc.valid[pc] {
				lc.valid[pc] = true
				lc.Fills++
			}
		} else {
			lc.reset() // flow left the loop during fill
			return
		}
	case lcActive:
		if pc < lc.head || pc > lc.tail {
			lc.Exits++
			lc.reset()
			return
		}
	}

	isSbb, target := shortBackwardBranch(pc, in)
	switch lc.state {
	case lcIdle:
		if isSbb && predTaken && int(pc-target)/4+1 <= lc.cfg.Entries {
			lc.Detects++
			lc.state = lcFill
			lc.head, lc.tail = target, pc
			clear(lc.valid)
		}
	case lcFill:
		if pc == lc.tail {
			if predTaken {
				lc.state = lcActive
			} else {
				lc.reset()
			}
		} else if isSbb && pc != lc.tail {
			lc.reset() // inner change of flow: abandon
		}
	case lcActive:
		if pc == lc.tail && !predTaken {
			lc.Exits++
			lc.reset()
		}
	}
}

// OnRedirect handles a misprediction recovery: any supply or fill in
// progress is abandoned (the recovered stream may diverge from the buffer).
func (lc *LoopCache) OnRedirect() { lc.reset() }

func (lc *LoopCache) reset() {
	lc.state = lcIdle
	clear(lc.valid)
}

// Active reports whether the buffer is currently supplying instructions.
func (lc *LoopCache) Active() bool { return lc.state == lcActive }

// shortBackwardBranch reports whether in at pc is a backward conditional
// branch or direct jump, and its target.
func shortBackwardBranch(pc uint32, in isa.Inst) (bool, uint32) {
	switch in.Op.Info().Class {
	case isa.ClassBranch:
		t := in.BranchTarget(pc)
		return t <= pc, t
	case isa.ClassJump:
		return in.Target <= pc, in.Target
	}
	return false, 0
}

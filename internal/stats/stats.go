// Package stats provides ordered named counters for simulator components and
// a uniform reporting format shared by the CLI tools and the benchmark
// harness.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Set is an ordered collection of named uint64 counters. The zero value is
// ready to use.
type Set struct {
	names  []string
	values map[string]uint64
}

// Add increments counter name by n, creating it if needed.
func (s *Set) Add(name string, n uint64) {
	if s.values == nil {
		s.values = make(map[string]uint64)
	}
	if _, ok := s.values[name]; !ok {
		s.names = append(s.names, name)
	}
	s.values[name] += n
}

// Inc increments counter name by one.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Get returns the value of counter name (zero if absent).
func (s *Set) Get(name string) uint64 { return s.values[name] }

// Set assigns counter name to v.
func (s *Set) Put(name string, v uint64) {
	if s.values == nil {
		s.values = make(map[string]uint64)
	}
	if _, ok := s.values[name]; !ok {
		s.names = append(s.names, name)
	}
	s.values[name] = v
}

// Names returns the counter names in insertion order.
func (s *Set) Names() []string { return append([]string(nil), s.names...) }

// Merge adds every counter of o into s.
func (s *Set) Merge(o *Set) {
	for _, n := range o.names {
		s.Add(n, o.values[n])
	}
}

// String renders the counters, one per line, sorted by name for stable
// output.
func (s *Set) String() string {
	names := s.Names()
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%-32s %12d\n", n, s.values[n])
	}
	return b.String()
}

// Ratio returns a/b as a float, or 0 when b is zero.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Pct returns 100*a/b, or 0 when b is zero.
func Pct(a, b uint64) float64 { return 100 * Ratio(a, b) }

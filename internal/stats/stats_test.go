package stats

import (
	"strings"
	"testing"
)

func TestCounters(t *testing.T) {
	var s Set
	s.Inc("a")
	s.Add("a", 4)
	s.Add("b", 2)
	if s.Get("a") != 5 || s.Get("b") != 2 || s.Get("absent") != 0 {
		t.Errorf("a=%d b=%d", s.Get("a"), s.Get("b"))
	}
	s.Put("a", 1)
	if s.Get("a") != 1 {
		t.Error("Put failed")
	}
}

func TestNamesInsertionOrder(t *testing.T) {
	var s Set
	s.Inc("z")
	s.Inc("a")
	s.Inc("z")
	names := s.Names()
	if len(names) != 2 || names[0] != "z" || names[1] != "a" {
		t.Errorf("names = %v", names)
	}
}

func TestMerge(t *testing.T) {
	var a, b Set
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(&b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Errorf("merged x=%d y=%d", a.Get("x"), a.Get("y"))
	}
}

func TestStringSorted(t *testing.T) {
	var s Set
	s.Add("zz", 1)
	s.Add("aa", 2)
	out := s.String()
	if strings.Index(out, "aa") > strings.Index(out, "zz") {
		t.Errorf("output not sorted:\n%s", out)
	}
}

func TestRatios(t *testing.T) {
	if Ratio(1, 0) != 0 || Pct(1, 0) != 0 {
		t.Error("division by zero not guarded")
	}
	if Ratio(1, 4) != 0.25 || Pct(1, 4) != 25 {
		t.Error("ratio math wrong")
	}
}

package pipeline

import (
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/interp"
	"reuseiq/internal/isa"
	"reuseiq/internal/prog"
)

// runInterp executes p on the golden-model interpreter.
func runInterp(t *testing.T, p *prog.Program) *interp.Machine {
	t.Helper()
	g := interp.New(p)
	if err := g.Run(); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return g
}

// runPipe executes p on the pipeline under cfg.
func runPipe(t *testing.T, cfg Config, p *prog.Program) *Machine {
	t.Helper()
	m := New(cfg, p)
	if err := m.Run(); err != nil {
		t.Fatalf("pipeline: %v\n%s", err, m.stateSummary())
	}
	return m
}

// checkArchEqual compares the pipeline's committed architectural state with
// the interpreter's.
func checkArchEqual(t *testing.T, label string, g *interp.Machine, m *Machine) {
	t.Helper()
	for i := 1; i < isa.NumIntRegs; i++ {
		if i == 1 {
			continue // $at is a scratch register, defined only transiently
		}
		if g.State.Int[i] != m.ArchInt(i) {
			t.Errorf("%s: $r%d = %d, interp %d", label, i, m.ArchInt(i), g.State.Int[i])
		}
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		gv, mv := g.State.FP[i], m.ArchFP(i)
		if gv != mv && !(gv != gv && mv != mv) { // NaN-tolerant
			t.Errorf("%s: $f%d = %v, interp %v", label, i, mv, gv)
		}
	}
	if !g.State.Mem.Equal(m.Mem) {
		t.Errorf("%s: final memory differs from interpreter", label)
	}
}

// differential runs src on the interpreter, the baseline pipeline, and the
// reuse pipeline, requiring identical architectural outcomes, and returns
// the reuse machine for further checks.
func differential(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	g := runInterp(t, p)
	base := runPipe(t, BaselineConfig(), p)
	checkArchEqual(t, "baseline", g, base)
	reuse := runPipe(t, DefaultConfig(), p)
	checkArchEqual(t, "reuse", g, reuse)
	if base.C.Commits != reuse.C.Commits {
		t.Errorf("commit counts differ: baseline %d, reuse %d", base.C.Commits, reuse.C.Commits)
	}
	return reuse
}

func TestStraightLine(t *testing.T) {
	m := differential(t, `
	li   $r2, 7
	li   $r3, 5
	add  $r4, $r2, $r3
	sub  $r5, $r2, $r3
	mul  $r6, $r2, $r3
	halt
	`)
	if m.ArchInt(6) != 35 {
		t.Errorf("r6 = %d", m.ArchInt(6))
	}
}

func TestTightLoopGates(t *testing.T) {
	m := differential(t, `
	li   $r2, 0
	li   $r3, 2000
loop:	add  $r2, $r2, $r3
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
	if m.ArchInt(2) != 2001000 {
		t.Errorf("sum = %d", m.ArchInt(2))
	}
	if m.Ctl.S.Promotions == 0 {
		t.Fatal("tight loop never promoted to code reuse")
	}
	if m.C.GatedCycles == 0 {
		t.Fatal("front end never gated")
	}
	if m.GatedFraction() < 0.5 {
		t.Errorf("gated fraction = %.2f, want > 0.5 for a 2000-iteration tight loop", m.GatedFraction())
	}
	if m.C.ReuseRenames == 0 {
		t.Error("no instances supplied by the reuse pointer")
	}
}

func TestBaselineNeverGates(t *testing.T) {
	p := asm.MustAssemble(`
	li $r3, 100
l:	addi $r3, $r3, -1
	bne $r3, $zero, l
	halt
	`)
	m := runPipe(t, BaselineConfig(), p)
	if m.C.GatedCycles != 0 || m.Ctl.S.Detections != 0 {
		t.Errorf("baseline gated %d cycles, detected %d loops", m.C.GatedCycles, m.Ctl.S.Detections)
	}
}

func TestLoopWithMemory(t *testing.T) {
	m := differential(t, `
	.data
a:	.space 4000
	.text
	la   $r5, a
	li   $r3, 1000
	li   $r2, 0
loop:	sw   $r2, 0($r5)
	addi $r5, $r5, 4
	addi $r2, $r2, 3
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
	a := m.Prog.Symbols["a"]
	if got := m.Mem.ReadI32(a + 4*999); got != 3*999 {
		t.Errorf("a[999] = %d", got)
	}
	if m.Ctl.S.Promotions == 0 {
		t.Error("memory loop never promoted")
	}
}

func TestLoopCarriedDependenceThroughMemory(t *testing.T) {
	// Each iteration loads what the previous iteration stored: exercises
	// store-to-load forwarding and conservative disambiguation inside the
	// reused loop body.
	m := differential(t, `
	.data
cell:	.space 4
	.text
	la   $r5, cell
	li   $r3, 500
loop:	lw   $r2, 0($r5)
	addi $r2, $r2, 2
	sw   $r2, 0($r5)
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
	if got := m.Mem.ReadI32(m.Prog.Symbols["cell"]); got != 1000 {
		t.Errorf("cell = %d", got)
	}
	if m.LSQ.Forwards == 0 {
		t.Error("no store-to-load forwarding occurred")
	}
}

func TestNestedLoopsOuterNonBufferable(t *testing.T) {
	m := differential(t, `
	li   $r2, 0        # acc
	li   $r6, 50       # outer count
outer:	li   $r3, 40       # inner count
inner:	addi $r2, $r2, 1
	addi $r3, $r3, -1
	bne  $r3, $zero, inner
	addi $r6, $r6, -1
	bne  $r6, $zero, outer
	halt
	`)
	if m.ArchInt(2) != 2000 {
		t.Errorf("acc = %d", m.ArchInt(2))
	}
	if m.Ctl.S.Promotions == 0 {
		t.Error("inner loop never promoted")
	}
	// The outer loop must end up in the NBLT after an inner loop is
	// detected during its buffering.
	if m.Ctl.S.RevokesInner == 0 {
		t.Error("outer loop buffering was never revoked by inner-loop detection")
	}
	if m.Ctl.NBLT().Inserts == 0 {
		t.Error("nothing was registered in the NBLT")
	}
}

func TestLoopWithProcedureCall(t *testing.T) {
	m := differential(t, `
	li   $r2, 0
	li   $r3, 300
loop:	jal  bump
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
bump:	addi $r2, $r2, 5
	jr   $ra
	`)
	if m.ArchInt(2) != 1500 {
		t.Errorf("acc = %d", m.ArchInt(2))
	}
	// Loop + small callee fit in the queue: must still be bufferable
	// (paper §2.2.2).
	if m.Ctl.S.Promotions == 0 {
		t.Error("loop with small procedure call never promoted")
	}
}

func TestLoopWithLargeProcedureRevokes(t *testing.T) {
	// The callee is larger than a 32-entry queue, so buffering must fill
	// the queue and revoke, registering the loop in the NBLT.
	src := `
	li   $r2, 0
	li   $r3, 50
loop:	jal  big
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
big:
`
	for i := 0; i < 40; i++ {
		src += "\taddi $r2, $r2, 1\n"
	}
	src += "\tjr $ra\n"
	p := asm.MustAssemble(src)
	g := runInterp(t, p)
	cfg := DefaultConfig().WithIQSize(32)
	m := runPipe(t, cfg, p)
	checkArchEqual(t, "reuse-iq32", g, m)
	if m.ArchInt(2) != 2000 {
		t.Errorf("acc = %d", m.ArchInt(2))
	}
	if m.Ctl.S.RevokesFull == 0 {
		t.Error("queue-full revoke never happened")
	}
	if m.Ctl.S.Promotions != 0 {
		t.Error("oversized loop+callee promoted to reuse")
	}
}

func TestAlternatingBranchInLoop(t *testing.T) {
	// A data-dependent branch inside the loop flips every iteration, so
	// any buffered static prediction is soon wrong: reuse must exit
	// cleanly and results stay correct.
	m := differential(t, `
	li   $r2, 0
	li   $r4, 0        # parity
	li   $r3, 400
loop:	bne  $r4, $zero, odd
	addi $r2, $r2, 1
	j    next
odd:	addi $r2, $r2, 100
next:	xori $r4, $r4, 1
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
	if m.ArchInt(2) != 200*1+200*100 {
		t.Errorf("acc = %d", m.ArchInt(2))
	}
}

func TestShortTripLoopReentered(t *testing.T) {
	// A small loop entered many times with a trip count just above what a
	// 64-entry queue unrolls (~21 copies of the 3-instruction body): reuse
	// engages and exits on every re-entry.
	m := differential(t, `
	li   $r2, 0
	li   $r6, 100      # outer
outer:	li   $r3, 40       # short inner trip count
inner:	addi $r2, $r2, 1
	addi $r3, $r3, -1
	bne  $r3, $zero, inner
	addi $r6, $r6, -1
	bne  $r6, $zero, outer
	halt
	`)
	if m.ArchInt(2) != 4000 {
		t.Errorf("acc = %d", m.ArchInt(2))
	}
	if m.Ctl.S.ReuseExits == 0 {
		t.Error("reuse never exited across loop re-entries")
	}
}

func TestFPLoop(t *testing.T) {
	m := differential(t, `
	.data
v:	.space 8000
s:	.space 8
	.text
	la   $r5, v
	li   $r3, 1000
	li   $r4, 1
	cvt.d.w $f0, $zero
	cvt.d.w $f2, $r4        # 1.0
init:	s.d  $f2, 0($r5)
	add.d $f2, $f2, $f2     # not really, grows fast; keep small trip
	addi $r5, $r5, 8
	addi $r3, $r3, -1
	bgtz $r3, init
	halt
	`)
	_ = m
}

func TestFPReductionLoop(t *testing.T) {
	m := differential(t, `
	.data
v:	.space 4000
sum:	.space 8
	.text
	la   $r5, v
	li   $r3, 500
	li   $r4, 2
	cvt.d.w $f4, $r4         # 2.0
	cvt.d.w $f0, $zero       # acc
loop:	add.d $f0, $f0, $f4
	mul.d $f6, $f0, $f4
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	la   $r6, sum
	s.d  $f0, 0($r6)
	halt
	`)
	if got := m.Mem.ReadF64(m.Prog.Symbols["sum"]); got != 1000.0 {
		t.Errorf("sum = %v", got)
	}
	if m.Ctl.S.Promotions == 0 {
		t.Error("FP loop never promoted")
	}
}

func TestRecursionUnderReuse(t *testing.T) {
	differential(t, `
main:	li   $a0, 12
	jal  fib
	move $r9, $v0
	halt
fib:	slti $at, $a0, 2
	beq  $at, $zero, frec
	move $v0, $a0
	jr   $ra
frec:	addi $sp, $sp, -12
	sw   $ra, 0($sp)
	sw   $a0, 4($sp)
	addi $a0, $a0, -1
	jal  fib
	sw   $v0, 8($sp)
	lw   $a0, 4($sp)
	addi $a0, $a0, -2
	jal  fib
	lw   $r8, 8($sp)
	add  $v0, $v0, $r8
	lw   $ra, 0($sp)
	addi $sp, $sp, 12
	jr   $ra
	`)
}

func TestDivideAndMultiplyLatencies(t *testing.T) {
	m := differential(t, `
	li   $r2, 1000
	li   $r3, 7
	divq $r4, $r2, $r3
	rem  $r5, $r2, $r3
	mul  $r6, $r4, $r3
	add  $r7, $r6, $r5
	halt
	`)
	if m.ArchInt(7) != 1000 {
		t.Errorf("reassembled quotient*divisor+rem = %d", m.ArchInt(7))
	}
}

func TestIQSizeSweepCorrectness(t *testing.T) {
	src := `
	li   $r2, 0
	li   $r6, 30
outer:	li   $r3, 100
inner:	addi $r2, $r2, 7
	addi $r7, $r2, 1
	sub  $r8, $r7, $r2
	add  $r2, $r2, $r8
	addi $r3, $r3, -1
	bne  $r3, $zero, inner
	addi $r6, $r6, -1
	bne  $r6, $zero, outer
	halt
	`
	p := asm.MustAssemble(src)
	g := runInterp(t, p)
	for _, iq := range []int{32, 64, 128, 256} {
		m := runPipe(t, DefaultConfig().WithIQSize(iq), p)
		checkArchEqual(t, "iq", g, m)
		if m.ArchInt(2) != 30*100*8 {
			t.Errorf("iq=%d: acc = %d", iq, m.ArchInt(2))
		}
	}
}

func TestReusedInstancesCommit(t *testing.T) {
	m := differential(t, `
	li   $r3, 1000
l:	addi $r3, $r3, -1
	bne  $r3, $zero, l
	halt
	`)
	if m.C.ReusedCommitted == 0 {
		t.Fatal("no reused instances committed")
	}
	// The vast majority of this loop's dynamic instances should come from
	// the reuse path.
	if float64(m.C.ReusedCommitted) < 0.8*float64(m.C.Commits) {
		t.Errorf("reused committed = %d of %d", m.C.ReusedCommitted, m.C.Commits)
	}
}

func TestSingleIterationStrategy(t *testing.T) {
	p := asm.MustAssemble(`
	li   $r3, 1000
	li   $r2, 0
l:	add  $r2, $r2, $r3
	addi $r3, $r3, -1
	bne  $r3, $zero, l
	halt
	`)
	g := runInterp(t, p)
	cfg := DefaultConfig()
	cfg.Reuse.Strategy = 1 // core.StrategySingle
	m := runPipe(t, cfg, p)
	checkArchEqual(t, "single-strategy", g, m)
	if m.Ctl.S.Promotions == 0 {
		t.Fatal("single-iteration strategy never promoted")
	}
	// Single-iteration buffering must hold exactly one loop body.
	multi := runPipe(t, DefaultConfig(), p)
	if m.IQ.PartialUpdates == 0 || multi.IQ.PartialUpdates == 0 {
		t.Error("no partial updates recorded")
	}
	if m.Ctl.S.IterationsBuffered >= multi.Ctl.S.IterationsBuffered {
		t.Errorf("single strategy buffered %d iterations, multi %d",
			m.Ctl.S.IterationsBuffered, multi.Ctl.S.IterationsBuffered)
	}
}

func TestHaltDrainsPipeline(t *testing.T) {
	m := differential(t, `
	li $r2, 1
	li $r3, 2
	halt
	li $r2, 99
	halt
	`)
	if m.ArchInt(2) != 1 || m.ArchInt(3) != 2 {
		t.Errorf("r2=%d r3=%d", m.ArchInt(2), m.ArchInt(3))
	}
}

func TestWatchdogFires(t *testing.T) {
	p := asm.MustAssemble("spin:\tj spin\n\thalt")
	cfg := BaselineConfig()
	cfg.MaxCycles = 50_000
	m := New(cfg, p)
	if err := m.Run(); err == nil {
		t.Fatal("infinite loop did not error")
	}
}

func TestStoreByteAndLoadVariants(t *testing.T) {
	m := differential(t, `
	.data
buf:	.space 16
	.text
	la   $r5, buf
	li   $r2, -1
	sb   $r2, 0($r5)
	li   $r3, 300
	sw   $r3, 4($r5)
	lb   $r6, 0($r5)
	lbu  $r7, 0($r5)
	lw   $r8, 4($r5)
	halt
	`)
	if m.ArchInt(6) != -1 || m.ArchInt(7) != 255 || m.ArchInt(8) != 300 {
		t.Errorf("lb=%d lbu=%d lw=%d", m.ArchInt(6), m.ArchInt(7), m.ArchInt(8))
	}
}

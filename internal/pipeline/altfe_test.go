package pipeline

import (
	"testing"

	"reuseiq/internal/altfe"
	"reuseiq/internal/asm"
	"reuseiq/internal/interp"
	"reuseiq/internal/mem"
)

const altLoopSrc = `
	li   $r2, 0
	li   $r3, 2000
loop:	add  $r2, $r2, $r3
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
`

// The prior-art comparators must preserve architectural correctness and
// actually reduce L1I activity on a tight loop.
func TestFilterCacheCorrectAndSavesL1I(t *testing.T) {
	p := asm.MustAssemble(altLoopSrc)
	g := interp.New(p)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	cfg := BaselineConfig()
	cfg.Mem.L0I = mem.DefaultFilterCache()
	m := runPipe(t, cfg, p)
	if m.ArchInt(2) != g.State.Int[2] {
		t.Fatalf("r2 = %d, want %d", m.ArchInt(2), g.State.Int[2])
	}
	if m.Hier.L0I == nil {
		t.Fatal("filter cache not instantiated")
	}
	plain := runPipe(t, BaselineConfig(), p)
	// Almost every fetch should hit the L0 for a 3-instruction loop.
	if m.Hier.L1I.Accesses > plain.Hier.L1I.Accesses/10 {
		t.Errorf("L1I accesses %d with filter cache vs %d without",
			m.Hier.L1I.Accesses, plain.Hier.L1I.Accesses)
	}
	if m.Hier.L0I.Accesses == 0 {
		t.Error("filter cache never accessed")
	}
}

func TestLoopCacheCorrectAndSupplies(t *testing.T) {
	p := asm.MustAssemble(altLoopSrc)
	g := interp.New(p)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	cfg := BaselineConfig()
	cfg.LoopCache = &altfe.LoopCacheConfig{Entries: 32}
	m := runPipe(t, cfg, p)
	if m.ArchInt(2) != g.State.Int[2] {
		t.Fatalf("r2 = %d, want %d", m.ArchInt(2), g.State.Int[2])
	}
	if m.C.LoopCacheSupplies == 0 {
		t.Fatal("loop cache never supplied an instruction")
	}
	plain := runPipe(t, BaselineConfig(), p)
	if m.Hier.L1I.Accesses >= plain.Hier.L1I.Accesses {
		t.Errorf("loop cache did not reduce L1I accesses: %d vs %d",
			m.Hier.L1I.Accesses, plain.Hier.L1I.Accesses)
	}
	// The vast majority of this loop's fetches should come from the buffer.
	if float64(m.C.LoopCacheSupplies) < 0.5*float64(m.C.Fetches) {
		t.Errorf("loop cache supplied only %d of %d fetches",
			m.C.LoopCacheSupplies, m.C.Fetches)
	}
}

func TestLoopCacheWithNestedLoops(t *testing.T) {
	p := asm.MustAssemble(`
	li   $r2, 0
	li   $r6, 50
outer:	li   $r3, 40
inner:	addi $r2, $r2, 1
	addi $r3, $r3, -1
	bne  $r3, $zero, inner
	addi $r6, $r6, -1
	bne  $r6, $zero, outer
	halt
	`)
	cfg := BaselineConfig()
	cfg.LoopCache = &altfe.LoopCacheConfig{Entries: 32}
	m := runPipe(t, cfg, p)
	if m.ArchInt(2) != 2000 {
		t.Fatalf("r2 = %d", m.ArchInt(2))
	}
	if m.C.LoopCacheSupplies == 0 {
		t.Error("inner loop never captured by the loop cache")
	}
}

// The loop cache and reuse queue can coexist (the loop cache only touches
// the fetch path), even if a real design would pick one.
func TestLoopCachePlusReuse(t *testing.T) {
	p := asm.MustAssemble(altLoopSrc)
	cfg := DefaultConfig()
	cfg.LoopCache = &altfe.LoopCacheConfig{Entries: 32}
	m := runPipe(t, cfg, p)
	if m.ArchInt(2) != 2001000 {
		t.Fatalf("r2 = %d", m.ArchInt(2))
	}
}

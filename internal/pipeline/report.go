package pipeline

import (
	"reuseiq/internal/stats"
	"reuseiq/internal/telemetry"
)

// RegisterMetrics registers every counter of the machine and its components
// with the unified telemetry registry. This is the single source the CLIs
// render from: StatsSet is just RegisterMetrics + Snapshot, and an attached
// tracer contributes its histograms (reuse-session length, issue-to-commit
// latency) to the same registry.
func (m *Machine) RegisterMetrics(r *telemetry.Registry) {
	put := r.CounterVal

	put("sim.cycles", m.C.Cycles)
	put("sim.commits", m.C.Commits)
	put("sim.gated_cycles", m.C.GatedCycles)
	put("sim.mispredicts", m.C.Mispredicts)

	put("fetch.insts", m.C.Fetches)
	put("fetch.cycles", m.C.FetchCycles)
	put("decode.insts", m.C.Decodes)
	put("rename.front", m.C.FrontRenames)
	put("rename.reuse", m.C.ReuseRenames)
	put("dispatch.stall.rob", m.C.DispatchStallROB)
	put("dispatch.stall.iq", m.C.DispatchStallIQ)
	put("dispatch.stall.lsq", m.C.DispatchStallLSQ)
	put("dispatch.stall.regs", m.C.DispatchStallRegs)

	put("commit.branches", m.C.BranchesCommitted)
	put("commit.taken", m.C.TakenCommitted)
	put("commit.loads", m.C.LoadsCommitted)
	put("commit.stores", m.C.StoresCommitted)
	put("commit.reused", m.C.ReusedCommitted)

	ctl := m.Ctl.S
	put("reuse.detections", ctl.Detections)
	put("reuse.nblt_filtered", ctl.NBLTFiltered)
	put("reuse.bufferings", ctl.Bufferings)
	put("reuse.iterations_buffered", ctl.IterationsBuffered)
	put("reuse.buffered_insts", ctl.BufferedInsts)
	put("reuse.promotions", ctl.Promotions)
	put("reuse.renames", ctl.ReuseRenames)
	put("reuse.exits", ctl.ReuseExits)
	put("reuse.revokes", ctl.Revokes)
	put("reuse.revokes.inner", ctl.RevokesInner)
	put("reuse.revokes.exit", ctl.RevokesExit)
	put("reuse.revokes.full", ctl.RevokesFull)
	put("reuse.revokes.recovery", ctl.RevokesRecovery)

	put("iq.dispatches", m.IQ.Dispatches)
	put("iq.partial_updates", m.IQ.PartialUpdates)
	put("iq.issue_reads", m.IQ.IssueReads)
	put("iq.removals", m.IQ.Removals)
	put("iq.collapses", m.IQ.Collapses)
	put("iq.wakeup_broadcasts", m.C.WakeupBroadcasts)

	put("lsq.allocs", m.LSQ.Allocs)
	put("lsq.searches", m.LSQ.Searches)
	put("lsq.forwards", m.LSQ.Forwards)
	put("lsq.conflict_stalls", m.LSQ.ConflictStalls)

	put("rob.allocs", m.ROB.Allocs)
	put("rob.commits", m.ROB.Commits)
	put("regfile.reads", m.RF.Reads)
	put("regfile.writes", m.RF.Writes)
	put("rename.map_reads", m.RF.MapReads)
	put("rename.renames", m.RF.Renames)

	put("bpred.lookups", m.BP.Lookups)
	put("bpred.updates", m.BP.Updates)
	put("bpred.btb_lookups", m.BP.BTBLookups)
	put("bpred.btb_updates", m.BP.BTBUpdates)
	put("bpred.ras_ops", m.BP.RASOps)

	put("il1.accesses", m.Hier.L1I.Accesses)
	put("il1.misses", m.Hier.L1I.Misses)
	put("dl1.accesses", m.Hier.L1D.Accesses)
	put("dl1.misses", m.Hier.L1D.Misses)
	put("dl1.writebacks", m.Hier.L1D.Writebacks)
	put("ul2.accesses", m.Hier.L2.Accesses)
	put("ul2.misses", m.Hier.L2.Misses)
	put("itlb.misses", m.Hier.ITLB.Misses())
	put("dtlb.misses", m.Hier.DTLB.Misses())
	if m.Hier.L0I != nil {
		put("il0.accesses", m.Hier.L0I.Accesses)
		put("il0.misses", m.Hier.L0I.Misses)
	}
	if m.LC != nil {
		put("loopcache.supplies", m.C.LoopCacheSupplies)
		put("loopcache.fills", m.LC.Fills)
		put("loopcache.detects", m.LC.Detects)
	}

	nblt := m.Ctl.NBLT()
	put("nblt.lookups", nblt.Lookups)
	put("nblt.hits", nblt.Hits)
	put("nblt.inserts", nblt.Inserts)

	for k := 0; k < len(m.FUs.Ops); k++ {
		put("fu."+fuKindName(k), m.FUs.Ops[k])
	}

	if m.Tel != nil {
		put("telemetry.events", m.Tel.Total())
		put("telemetry.events_dropped", m.Tel.Dropped())
		put("telemetry.sessions", uint64(len(m.Tel.Sessions())))
		r.RegisterHistogram("hist.session_cycles", &m.Tel.SessionCycles)
		r.RegisterHistogram("hist.issue_to_commit", &m.Tel.IssueToCommit)
	}

	// An attached fast-forward engine contributes its own counters; the
	// interface is asserted here so pipeline need not import the engine.
	if ff, ok := m.FF.(interface{ RegisterMetrics(*telemetry.Registry) }); ok {
		ff.RegisterMetrics(r)
	}
}

// StatsSet exports every counter of the machine and its components as an
// ordered stats.Set, for uniform text reporting and for diffing two runs.
func (m *Machine) StatsSet() *stats.Set {
	r := &telemetry.Registry{}
	m.RegisterMetrics(r)
	return r.Snapshot()
}

func fuKindName(k int) string {
	return [...]string{"ialu", "imul", "fpalu", "fpmul", "memport"}[k]
}

// Package pipeline implements the execution-driven out-of-order superscalar
// processor model of the paper's Figure 1: a seven-stage pipeline (fetch,
// decode, rename/dispatch, issue, execute, writeback, commit) built around
// the reuse-capable issue queue of internal/core. Wrong-path instructions
// are fetched, renamed and executed until the mispredicted branch resolves
// at writeback; stores update memory only at commit.
package pipeline

import (
	"reuseiq/internal/altfe"
	"reuseiq/internal/bpred"
	"reuseiq/internal/chaos"
	"reuseiq/internal/core"
	"reuseiq/internal/fu"
	"reuseiq/internal/mem"
)

// Config collects every structural parameter of the modeled processor. The
// defaults reproduce the paper's Table 1 baseline.
type Config struct {
	FetchWidth     int
	DecodeWidth    int
	IssueWidth     int
	CommitWidth    int
	FetchQueueSize int

	IQSize  int
	ROBSize int
	LSQSize int

	// IntPhysRegs/FPPhysRegs default to ROBSize + architectural registers.
	IntPhysRegs int
	FPPhysRegs  int

	// MispredictPenalty is the front-end redirect delay in cycles after a
	// misprediction resolves at writeback.
	MispredictPenalty int

	Mem   mem.HierarchyConfig
	Bpred bpred.Config
	FU    fu.Config
	Reuse core.Config

	// LoopCache, when non-nil, adds a prior-art dynamic loop cache to the
	// fetch path (for comparison experiments; normally combined with
	// Reuse.Enabled = false). A filter cache is enabled via Mem.L0I.
	LoopCache *altfe.LoopCacheConfig

	// Chaos configures deterministic fault injection (forced revokes,
	// flipped predictions, stall storms, latency jitter). Disabled by
	// default; timing-only, so architectural results are unaffected.
	Chaos chaos.Config

	// MaxCycles bounds a run (0 = DefaultMaxCycles). WatchdogCycles aborts
	// when no instruction commits for that long (0 = DefaultWatchdog).
	MaxCycles      uint64
	WatchdogCycles uint64

	// FastForward opts the machine into the internal/ffwd convergence
	// detector (simulation-speed only; modeled results are unchanged).
	// The pipeline itself never reads it — harnesses and CLIs call
	// ffwd.Attach, which honors the flag. Excluded from the snapshot
	// config fingerprint for the same reason.
	FastForward bool
}

// Default simulation limits.
const (
	DefaultMaxCycles = 2_000_000_000
	DefaultWatchdog  = 100_000
)

// DefaultConfig returns the paper's Table 1 configuration with the reuse
// mechanism enabled (64-entry issue queue, 8-entry NBLT, multi-iteration
// buffering).
func DefaultConfig() Config {
	return Config{
		FetchWidth:        4,
		DecodeWidth:       4,
		IssueWidth:        4,
		CommitWidth:       4,
		FetchQueueSize:    4,
		IQSize:            64,
		ROBSize:           64,
		LSQSize:           32,
		MispredictPenalty: 2,
		Mem:               mem.DefaultHierarchy(),
		Bpred:             bpred.DefaultConfig(),
		FU:                fu.DefaultConfig(),
		Reuse:             core.Config{Enabled: true, NBLTSize: 8, Strategy: core.StrategyMulti},
	}
}

// BaselineConfig returns the conventional-issue-queue baseline: identical
// hardware with the reuse mechanism disabled.
func BaselineConfig() Config {
	c := DefaultConfig()
	c.Reuse.Enabled = false
	return c
}

// WithIQSize derives a configuration for the paper's issue-queue-size sweep:
// ROB equals the issue queue size and the load/store queue is half of it
// (paper §3).
func (c Config) WithIQSize(n int) Config {
	c.IQSize = n
	c.ROBSize = n
	c.LSQSize = n / 2
	c.IntPhysRegs = 0
	c.FPPhysRegs = 0
	return c
}

// normalized fills derived defaults.
func (c Config) normalized() Config {
	if c.IntPhysRegs == 0 {
		c.IntPhysRegs = c.ROBSize + 32
	}
	if c.FPPhysRegs == 0 {
		c.FPPhysRegs = c.ROBSize + 32
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = DefaultMaxCycles
	}
	if c.WatchdogCycles == 0 {
		c.WatchdogCycles = DefaultWatchdog
	}
	c.Reuse.IQSize = c.IQSize
	return c
}

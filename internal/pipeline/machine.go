package pipeline

import (
	"fmt"
	"sync"

	"reuseiq/internal/altfe"
	"reuseiq/internal/bpred"
	"reuseiq/internal/chaos"
	"reuseiq/internal/core"
	"reuseiq/internal/fu"
	"reuseiq/internal/isa"
	"reuseiq/internal/lsq"
	"reuseiq/internal/mem"
	"reuseiq/internal/prog"
	"reuseiq/internal/rename"
	"reuseiq/internal/rob"
	"reuseiq/internal/telemetry"
	"reuseiq/internal/trace"
)

// Counters are the pipeline-level activity counters consumed by the power
// model and the experiment harness (component-internal counters live on the
// components themselves).
type Counters struct {
	Cycles      uint64
	Commits     uint64
	GatedCycles uint64 // cycles with the front end gated (Code Reuse)

	Fetches      uint64 // instructions fetched (including wrong path)
	FetchCycles  uint64 // cycles the fetch stage was active (not gated/stalled)
	Decodes      uint64
	FrontRenames uint64 // instructions dispatched from the front end
	ReuseRenames uint64 // instances dispatched by the reuse pointer

	BranchesCommitted uint64
	TakenCommitted    uint64
	Mispredicts       uint64 // resolved mispredictions (recoveries)
	LoadsCommitted    uint64
	StoresCommitted   uint64
	ReusedCommitted   uint64 // committed instances that came from the reuse path
	LoopCacheSupplies uint64 // fetches served by the prior-art loop cache

	// WakeupBroadcasts counts result-tag broadcasts into the issue queue;
	// WakeupOccupancySum accumulates queue occupancy at each broadcast so
	// the power model can charge CAM energy proportional to live entries.
	WakeupBroadcasts    uint64
	WakeupOccupancySum  uint64
	IssueCycleScans     uint64 // occupancy examined by select logic, summed per cycle
	DispatchStallIQ     uint64
	DispatchStallROB    uint64
	DispatchStallLSQ    uint64
	DispatchStallRegs   uint64
	StoreCommitAccesses uint64 // data cache writes performed at commit
}

type fetched struct {
	pc         uint32
	in         isa.Inst
	isControl  bool
	predTaken  bool
	predTarget uint32
}

// Commit is the structured record of one committed instruction, handed to
// the OnCommit hook. It mirrors interp.Effect so the lockstep oracle can
// compare the two field by field.
type Commit struct {
	Cycle  uint64
	Seq    uint64
	PC     uint32
	Inst   isa.Inst
	Reused bool // supplied by the reuse pointer, not the front end

	// Halted is set for the committing HALT; no effect fields are valid.
	Halted bool

	// Destination register write.
	HasDest bool
	Dest    isa.Reg
	DestI   int32
	DestF   float64

	// Store effect (memory written at commit).
	IsStore   bool
	StoreAddr uint32
	StoreI    int32
	StoreF    float64

	// Load effect.
	IsLoad   bool
	LoadAddr uint32

	// Control-flow resolution (valid for control instructions).
	Taken  bool
	Target uint32
}

type execEntry struct {
	robSlot int
	seq     uint64
	done    uint64 // completion cycle
	valI    int32
	valF    float64
}

// Machine is one simulated processor instance bound to a program.
type Machine struct {
	//reuse:transient configuration; the snapshot wire format fingerprints it via ConfigHash and Resume rebuilds from it
	Cfg Config
	//reuse:transient the loaded program; fingerprinted via ProgramHash, its mutable memory restores through Mem's pair
	Prog *prog.Program

	Mem  *prog.Memory // architectural data memory (committed state)
	Hier *mem.Hierarchy
	BP   *bpred.Predictor
	RF   *rename.RegFile
	ROB  *rob.ROB
	LSQ  *lsq.LSQ
	IQ   *core.Queue
	Ctl  *core.Controller
	FUs  *fu.Pool
	LC   *altfe.LoopCache // nil unless a loop cache is configured

	C Counters

	cycle           uint64
	nextSeq         uint64
	fetchPC         uint32
	fetchStallUntil uint64
	fetchHalted     bool
	fetchQ          []fetched
	decodeLat       []fetched
	execQ           []execEntry
	//reuse:transient writeback scratch; never live across a cycle boundary
	done []execEntry // writeback scratch (completions this cycle)
	//reuse:transient issue scratch; never live across a cycle boundary
	cands      []issueCand // issue scratch (sorted ready candidates)
	halted     bool
	lastCommit uint64

	// commitLog, when enabled via LogCommits, records the PC of every
	// committed instruction (used by differential tests).
	//reuse:transient debugging capture owned by differential tests, not machine state
	commitLog []uint32
	//reuse:transient debugging knob owned by differential tests
	LogCommits bool

	// Chaos is the fault injector, non-nil when Cfg.Chaos.Enabled. Its
	// counters record how many faults were actually injected.
	Chaos *chaos.Injector

	// OnCommit, when non-nil, observes every committed instruction in
	// program order (the lockstep oracle's hook). A returned error stops
	// the machine: Run returns it, and no further cycles execute.
	//reuse:nilguard
	//reuse:transient observer hook; the host re-attaches it after a restore
	OnCommit func(Commit) error

	// OnCycle, when non-nil, runs after every completed cycle (the
	// invariant checker's hook). A returned error stops the machine like
	// an OnCommit error.
	//reuse:nilguard
	//reuse:transient observer hook; the host re-attaches it after a restore
	OnCycle func() error

	// hookErr latches the first error returned by OnCommit or OnCycle.
	//reuse:transient hook plumbing; a machine that latched an error stops and is not snapshotted mid-failure
	hookErr error

	// DebugIssue, when non-nil, receives a line per issued instruction
	// (debugging aid for tests).
	//reuse:nilguard
	//reuse:transient debugging hook; the host re-attaches it after a restore
	DebugIssue func(seq uint64, pc uint32, desc string)

	// Trace, when non-nil, receives one line per notable event.
	//reuse:nilguard
	//reuse:transient debugging hook; the host re-attaches it after a restore
	Trace func(format string, args ...any)

	// Rec, when non-nil, records per-instruction pipeline timing for the
	// first Rec.Max dispatched instructions.
	//reuse:nilguard
	//reuse:transient observation capture; the host re-attaches the recorder after a restore
	Rec *trace.Recorder

	// Tel, when non-nil, receives structured telemetry (RIQ state
	// transitions, session audit, instruction lifecycles, chaos events).
	// Install with AttachTelemetry; nil costs one pointer check per tap.
	//reuse:nilguard
	//reuse:transient observation capture; AttachTelemetry re-installs the tracer after a restore
	Tel *telemetry.Tracer

	// telSeq is the exclusive per-instruction tap threshold, cached from
	// Tel's InstLimit: lifecycle taps (dispatch, issue, complete, commit)
	// fire only for seq < telSeq, and 0 (no tracer) disables them. The
	// per-instruction guard is a single scalar compare instead of a
	// pointer chase into the tracer — the taps sit on every stage of
	// every instruction, where the difference is measurable.
	//reuse:transient cached tap threshold, recomputed by AttachTelemetry
	telSeq uint64

	// OnSample, when non-nil, runs every SampleEvery cycles at the end of
	// Step, on the simulation goroutine — the periodic tap live observers
	// (internal/obs) publish from. Nil-guarded like OnCycle: one pointer
	// check per cycle when disabled. Install with AttachSampler.
	//reuse:nilguard
	//reuse:transient observer hook; AttachSampler re-installs it after a restore
	OnSample func()
	//reuse:transient sampling knob owned by the host observer, re-armed by AttachSampler
	SampleEvery uint64
	//reuse:transient sampling countdown, re-armed by AttachSampler
	sampleLeft uint64

	// ExactState declares that a consumer checkpoints, diffs, or replays
	// this machine's intermediate states byte-for-byte (the flight recorder
	// sets it). Optimizations that preserve architectural state and
	// counters but not the bit-exact microarchitectural arrangement — the
	// fast-forward engine's analytic loop skip — must stand down while it
	// is set. Bit-exact shortcuts (the idle-cycle skip) are unaffected.
	//reuse:transient consumer declaration set by the host (flight recorder), not machine state
	ExactState bool

	// FF, when non-nil, is consulted between cycles by RunBreakable and
	// may advance the machine over provably repetitive or inert spans
	// (the internal/ffwd engine). Nil-guarded: one pointer check per
	// cycle when disabled. An error aborts the run like a hook error.
	//reuse:nilguard
	//reuse:transient acceleration hook; the host re-attaches the engine after a restore
	FF FastForwarder
}

// FastForwarder is the hook interface the fast-forward engine implements.
// Tick runs between cycles (after the budget and watchdog checks) and may
// mutate the machine to skip ahead, as long as the resulting state is one
// the cycle-accurate simulation would also have reached.
type FastForwarder interface {
	Tick() error
}

// AttachSampler installs fn as the periodic sampler, firing every `every`
// cycles (default 4096 when zero). The callback runs on the simulation
// goroutine, so it may read any machine state; whatever it publishes to
// other goroutines must be an immutable copy.
func (m *Machine) AttachSampler(every uint64, fn func()) {
	if every == 0 {
		every = 4096
	}
	m.SampleEvery = every
	m.sampleLeft = every
	m.OnSample = fn
}

// AttachTelemetry connects a tracer to the machine and its reuse controller.
// Call before Run; call Tel.Finalize(m.Cycle()) after the run to close a
// session left open at HALT.
func (m *Machine) AttachTelemetry(t *telemetry.Tracer) {
	m.Tel = t
	m.telSeq = t.InstSeqCap()
	m.Ctl.Hook = t.CtlEvent
}

// New builds a machine for p under cfg.
func New(cfg Config, p *prog.Program) *Machine {
	cfg = cfg.normalized()
	m := &Machine{
		Cfg:  cfg,
		Prog: p,
		Mem:  p.Data.Clone(),
		Hier: mem.NewHierarchy(cfg.Mem),
		BP:   bpred.New(cfg.Bpred),
		RF:   rename.MustNew(cfg.IntPhysRegs, cfg.FPPhysRegs),
		ROB:  rob.New(cfg.ROBSize),
		LSQ:  lsq.New(cfg.LSQSize),
		FUs:  fu.NewPool(cfg.FU),
	}
	m.IQ = core.NewQueue(cfg.IQSize)
	m.Ctl = core.NewController(cfg.Reuse, m.IQ)
	m.Chaos = chaos.New(cfg.Chaos)
	if cfg.LoopCache != nil {
		m.LC = altfe.NewLoopCache(*cfg.LoopCache)
	}
	m.fetchPC = p.Entry
	m.RF.SetArchInt(isa.RegSP, int32(prog.StackTop))

	// Working buffers come from a shared pool so that sweep harnesses
	// building thousands of machines reuse them instead of regrowing; a
	// fresh set is pre-sized so the hot loop never reallocates.
	if w, _ := wsPool.Get().(*workspace); w != nil {
		m.fetchQ = w.fetchQ[:0]
		m.decodeLat = w.decodeLat[:0]
		m.execQ = w.execQ[:0]
		m.done = w.done[:0]
		m.cands = w.cands[:0]
		m.commitLog = w.commitLog[:0]
	} else {
		m.fetchQ = make([]fetched, 0, cfg.FetchQueueSize)
		m.decodeLat = make([]fetched, 0, cfg.DecodeWidth)
		m.execQ = make([]execEntry, 0, cfg.IQSize)
		m.done = make([]execEntry, 0, cfg.IQSize)
		m.cands = make([]issueCand, 0, cfg.IQSize)
	}
	return m
}

// workspace holds a machine's reusable scratch buffers between runs.
type workspace struct {
	fetchQ    []fetched
	decodeLat []fetched
	execQ     []execEntry
	done      []execEntry
	cands     []issueCand
	commitLog []uint32
}

var wsPool sync.Pool

// Release returns the machine's scratch buffers to the shared pool for reuse
// by future machines. Results (counters, architectural state, statistics)
// stay readable, but the machine must not be stepped afterwards and the
// commit log is surrendered.
func (m *Machine) Release() {
	wsPool.Put(&workspace{
		fetchQ:    m.fetchQ,
		decodeLat: m.decodeLat,
		execQ:     m.execQ,
		done:      m.done,
		cands:     m.cands,
		commitLog: m.commitLog,
	})
	m.fetchQ, m.decodeLat = nil, nil
	m.execQ, m.done, m.cands = nil, nil, nil
	m.commitLog = nil
}

// Halted reports whether the program's HALT has committed.
func (m *Machine) Halted() bool { return m.halted }

// Cycle returns the current cycle number.
func (m *Machine) Cycle() uint64 { return m.cycle }

// FetchPC returns the next fetch address. The fast-forward engine uses it to
// anchor iteration marks on loop back-edges when the front end is not gated.
func (m *Machine) FetchPC() uint32 { return m.fetchPC }

// IPC returns committed instructions per cycle.
func (m *Machine) IPC() float64 {
	if m.C.Cycles == 0 {
		return 0
	}
	return float64(m.C.Commits) / float64(m.C.Cycles)
}

// GatedFraction returns the fraction of execution cycles with the pipeline
// front end gated (paper Figure 5).
func (m *Machine) GatedFraction() float64 {
	if m.C.Cycles == 0 {
		return 0
	}
	return float64(m.C.GatedCycles) / float64(m.C.Cycles)
}

// Step advances the machine by one cycle. Stage order is back to front so
// that a latch drained by a later stage can be refilled in the same cycle.
//
//reuse:hotpath
func (m *Machine) Step() {
	m.cycle++
	m.C.Cycles++
	if m.Tel != nil {
		m.Tel.BeginCycle(m.cycle)
	}
	if m.Ctl.GateActive() {
		m.C.GatedCycles++
		// The session audit log counts gated cycles at exactly this
		// point, so per-session totals reconcile with C.GatedCycles.
		if m.Tel != nil {
			m.Tel.GatedCycle()
		}
	}
	// Fault injection: a forced buffering revoke is a controller-level
	// event independent of any stage, so it fires at the cycle boundary.
	if m.Chaos.RollRevoke() && m.Ctl.ForceRevoke() {
		m.Chaos.CountRevoke()
		if m.Tel != nil {
			m.Tel.ChaosRevoke()
		}
		m.tracef("cycle %d: chaos revoked buffering", m.cycle)
	}
	m.commit()
	if m.halted || m.hookErr != nil {
		return
	}
	m.writeback()
	m.issue()
	m.dispatch()
	m.decode()
	m.fetch()
	if m.OnCycle != nil {
		if err := m.OnCycle(); err != nil {
			m.hookErr = err
		}
	}
	if m.OnSample != nil {
		if m.sampleLeft > 1 {
			m.sampleLeft--
		} else {
			m.sampleLeft = m.SampleEvery
			m.OnSample()
		}
	}
}

// Run executes until HALT commits, returning an error on cycle budget
// exhaustion or deadlock.
func (m *Machine) Run() error { return m.RunBreakable(0, nil) }

// StateSummary renders a one-line snapshot of the machine's queues, the
// reuse-capable issue queue (RIQ) state and the ROB head, for diagnostics.
func (m *Machine) StateSummary() string { return m.stateSummary() }

func (m *Machine) stateSummary() string {
	s := fmt.Sprintf("state=%v rob=%d/%d iq=%d/%d lsq=%d/%d fetchPC=0x%x",
		m.Ctl.State(), m.ROB.Len(), m.ROB.Size(), m.IQ.Len(), m.IQ.Size(),
		m.LSQ.Len(), m.LSQ.Size(), m.fetchPC)
	if h := m.ROB.Head(); h != nil {
		s += fmt.Sprintf(" head={seq=%d pc=0x%x %s done=%v}", h.Seq, h.PC, h.Inst.Disasm(h.PC), h.Done)
	}
	return s
}

// ArchInt returns the committed architectural value of integer register n.
func (m *Machine) ArchInt(n int) int32 { return m.RF.ArchInt(n) }

// ArchFP returns the committed architectural value of FP register n.
func (m *Machine) ArchFP(n int) float64 { return m.RF.ArchFP(n) }

//reuse:allow-alloc trace formatter; returns immediately when Trace is nil
func (m *Machine) tracef(format string, args ...any) {
	if m.Trace != nil {
		m.Trace(format, args...)
	}
}

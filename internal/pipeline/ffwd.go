// Fast-forward support: the two pipeline-level primitives the internal/ffwd
// engine builds on. Restore applies a (mutated) state image to a live
// machine, re-running the same validation a snapshot resume would; SkipIdle
// advances the machine over provably inert cycles in one step. Both must
// leave the machine in a state the cycle-accurate simulation would also have
// reached — the engine's byte-identity gates depend on it.
package pipeline

import "reuseiq/internal/core"

// Restore overwrites the machine's complete state with st, validating the
// image exactly like Resume. The machine keeps its configuration, program,
// hooks and scratch buffers; everything the snapshot covers is replaced.
// The fast-forward engine uses it to land an extrapolated state; tests can
// use it to rewind a machine to an earlier Snapshot.
func (m *Machine) Restore(st *MachineState) error { return m.load(st) }

// NextSeq returns the next program-order sequence number to be assigned at
// dispatch (i.e. in-flight instructions hold sequence numbers below it).
func (m *Machine) NextSeq() uint64 { return m.nextSeq }

// SkipIdle advances the machine over cycles that are provably inert — no
// stage can do observable work until a known future cycle — and returns how
// many cycles were skipped (0 when the current state is not inert or any
// observer is attached).
//
// A cycle is inert when the front end is drained and stalled (or halted),
// no issue-queue entry is ready, no pending store address can resolve, the
// ROB head is not ready to commit, and no in-flight execution completes.
// The earliest cycle at which any of that changes is the minimum of the
// next writeback completion and the fetch restart; the skip is additionally
// clamped so the cycle-budget and watchdog aborts of RunBreakable fire at
// exactly the cycle they would have without skipping.
//
// Per skipped cycle the machine charges exactly what a real inert Step
// charges: Cycles, and the select-logic occupancy scans (IssueCycleScans
// and the queue's SelectScans); nothing else in an inert cycle touches a
// counter. Any attached observer (hooks, sampler, recorder) or fault
// injector vetoes the skip, because those see per-cycle events. The
// telemetry tracer is exempt: an inert cycle emits no events, so nothing is
// elided from its stream, and the ffwd engine stamps a synthetic idle-skip
// annotation so a cycle-indexed timeline shows why the gap has no events.
func (m *Machine) SkipIdle() uint64 {
	// Observers and fault injection see individual cycles.
	if m.Chaos != nil || m.OnCycle != nil || m.OnCommit != nil ||
		m.OnSample != nil || m.Rec != nil || m.DebugIssue != nil || m.Trace != nil {
		return 0
	}
	if m.halted || m.hookErr != nil {
		return 0
	}
	// Only the conventional mode is skipped: during Buffering and Reuse the
	// controller itself acts every cycle.
	if m.Ctl.State() != core.Normal {
		return 0
	}
	// Front end drained and unable to make progress next cycle.
	if len(m.decodeLat) != 0 || len(m.fetchQ) != 0 {
		return 0
	}
	if !m.fetchHalted && m.fetchStallUntil <= m.cycle+1 {
		return 0
	}
	// No issue-queue entry can issue.
	if len(m.IQ.ReadySlots()) != 0 {
		return 0
	}
	// No pending store address can resolve (and none is stale: a stale
	// entry would be unlinked by resolveStoreAddresses, a state change).
	inert := true
	//reuse:allow-alloc non-escaping closure: ForEachPendingStore calls f inline and never retains it
	m.IQ.ForEachPendingStore(func(slot int) bool {
		e := m.IQ.Entry(slot)
		le := m.LSQ.Get(e.LSQSlot)
		if le.AddrReady || le.Seq != e.Seq || e.SrcReady[0] {
			inert = false
			return false
		}
		return true
	})
	if !inert {
		return 0
	}
	// Commit blocked.
	if h := m.ROB.Head(); h != nil && h.Done {
		return 0
	}
	// Earliest cycle anything can happen again.
	target := m.lastCommit + m.Cfg.WatchdogCycles // watchdog fires at target+1
	if bound := m.Cfg.MaxCycles - 1; bound < target {
		target = bound // budget abort fires at bound+1
	}
	if !m.fetchHalted && m.fetchStallUntil-1 < target {
		target = m.fetchStallUntil - 1
	}
	for i := range m.execQ {
		if d := m.execQ[i].done - 1; d < target {
			target = d
		}
	}
	if target <= m.cycle {
		return 0
	}
	skipped := target - m.cycle
	occ := uint64(m.IQ.Len())
	m.cycle = target
	m.C.Cycles += skipped
	m.C.IssueCycleScans += skipped * occ
	m.IQ.SelectScans += skipped * occ
	return skipped
}

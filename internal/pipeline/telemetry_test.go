package pipeline

import (
	"bytes"
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/telemetry"
)

const telLoopSrc = `
	li   $r2, 0
	li   $r3, 2000
loop:	add  $r2, $r2, $r3
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`

func runTelemetry(t *testing.T, src string) (*Machine, *telemetry.Tracer) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig(), p)
	tel := telemetry.New(telemetry.Config{})
	m.AttachTelemetry(tel)
	if err := m.Run(); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	tel.Finalize(m.Cycle())
	return m, tel
}

// The acceptance invariant of the audit log: per-session gated-cycle totals
// reconcile exactly with the machine's global fetch-gated counter. The
// session tap sits at the same statement as the counter increment, so any
// drift is a wiring bug.
func TestSessionGatedCyclesReconcile(t *testing.T) {
	m, tel := runTelemetry(t, telLoopSrc)
	sessions := tel.Sessions()
	if len(sessions) == 0 {
		t.Fatal("tight loop produced no sessions")
	}
	var gated uint64
	for _, s := range sessions {
		gated += s.GatedCycles
	}
	if gated != m.C.GatedCycles {
		t.Errorf("sum of session GatedCycles = %d, machine GatedCycles = %d",
			gated, m.C.GatedCycles)
	}
}

// Telemetry observation must not perturb the simulation: the same program
// must produce identical cycle counts and stats with and without a tracer
// attached.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	p, err := asm.Assemble(telLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	plain := New(DefaultConfig(), p)
	if err := plain.Run(); err != nil {
		t.Fatal(err)
	}
	traced, tel := runTelemetry(t, telLoopSrc)
	if plain.Cycle() != traced.Cycle() {
		t.Errorf("cycles differ: plain %d, traced %d", plain.Cycle(), traced.Cycle())
	}
	// Compare full stats, masking only the telemetry-specific additions.
	ps, ts := plain.StatsSet(), traced.StatsSet()
	for _, name := range ps.Names() {
		if ps.Get(name) != ts.Get(name) {
			t.Errorf("stat %s differs: plain %d, traced %d", name, ps.Get(name), ts.Get(name))
		}
	}
	if tel.Total() == 0 {
		t.Error("tracer attached but recorded nothing")
	}
}

// The session audit log must describe the loop the machine actually captured.
func TestSessionAuditDescribesLoop(t *testing.T) {
	m, tel := runTelemetry(t, telLoopSrc)
	sessions := tel.Sessions()
	var promoted *telemetry.Session
	for i := range sessions {
		if sessions[i].Promoted() {
			promoted = &sessions[i]
			break
		}
	}
	if promoted == nil {
		t.Fatal("no promoted session for a 2000-iteration tight loop")
	}
	if promoted.StaticSize != 3 {
		t.Errorf("StaticSize = %d, want 3 (add/addi/bne)", promoted.StaticSize)
	}
	if promoted.Head >= promoted.Tail {
		t.Errorf("head 0x%x not below tail 0x%x", promoted.Head, promoted.Tail)
	}
	if promoted.ReusedInsts == 0 {
		t.Error("promoted session supplied no reused instances")
	}
	if promoted.GatedCycles == 0 {
		t.Error("promoted session gated no cycles")
	}
	if promoted.PromoteCycle <= promoted.StartCycle || promoted.EndCycle < promoted.PromoteCycle {
		t.Errorf("cycle stamps out of order: %d / %d / %d",
			promoted.StartCycle, promoted.PromoteCycle, promoted.EndCycle)
	}
	var reused uint64
	for _, s := range sessions {
		reused += s.ReusedInsts
	}
	if reused != m.Ctl.S.ReuseRenames {
		t.Errorf("session reused sum = %d, controller ReuseRenames = %d",
			reused, m.Ctl.S.ReuseRenames)
	}
}

// End-to-end: a traced run exports Chrome trace JSON that validates and
// contains RIQ state transitions for at least one captured loop.
func TestTraceExportEndToEnd(t *testing.T) {
	m, tel := runTelemetry(t, telLoopSrc)
	var buf bytes.Buffer
	if err := telemetry.WriteTraceJSON(&buf, tel, m.Cycle()); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	ev := tel.Events()
	if telemetry.CountKind(ev, telemetry.EvBuffer) == 0 ||
		telemetry.CountKind(ev, telemetry.EvPromote) == 0 {
		t.Error("trace missing RIQ state-transition events")
	}
	if telemetry.CountKind(ev, telemetry.EvDispatch) == 0 {
		t.Error("trace missing instruction lifecycle events")
	}
}

// The registry renders telemetry histograms alongside the machine counters.
func TestRegistryIncludesTelemetry(t *testing.T) {
	m, _ := runTelemetry(t, telLoopSrc)
	s := m.StatsSet()
	if s.Get("telemetry.events") == 0 {
		t.Error("telemetry.events counter missing or zero")
	}
	if s.Get("hist.session_cycles.count") == 0 {
		t.Error("session-cycles histogram missing from registry snapshot")
	}
	if s.Get("hist.issue_to_commit.count") == 0 {
		t.Error("issue-to-commit histogram missing from registry snapshot")
	}
}

// The sampler tap fires on the simulation goroutine at a fixed cadence and
// not at all when unattached (it's nil-guarded like OnCycle).
func TestSamplerTapCadence(t *testing.T) {
	p, err := asm.Assemble(telLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig(), p)
	var calls int
	var lastCycle uint64
	m.AttachSampler(64, func() {
		calls++
		lastCycle = m.Cycle()
	})
	for i := 0; i < 1000 && !m.Halted(); i++ {
		m.Step()
	}
	want := int(m.Cycle() / 64)
	if calls != want {
		t.Errorf("sampler fired %d times over %d cycles, want %d (every 64)", calls, m.Cycle(), want)
	}
	if lastCycle%64 != 0 {
		t.Errorf("last sample at cycle %d, want a multiple of 64", lastCycle)
	}
}

func TestSamplerDefaultInterval(t *testing.T) {
	p, err := asm.Assemble(telLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig(), p)
	m.AttachSampler(0, func() {})
	if m.SampleEvery != 4096 {
		t.Errorf("default SampleEvery = %d, want 4096", m.SampleEvery)
	}
}

// A sampler callback may snapshot the registry mid-run: the typed snapshot
// is complete and internally consistent at every sample point.
func TestSamplerSnapshotsRegistryMidRun(t *testing.T) {
	p, err := asm.Assemble(telLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig(), p)
	tel := telemetry.New(telemetry.Config{})
	m.AttachTelemetry(tel)
	var snaps []*telemetry.MetricsSnapshot
	m.AttachSampler(512, func() {
		r := &telemetry.Registry{}
		m.RegisterMetrics(r)
		snaps = append(snaps, r.TypedSnapshot())
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("only %d samples over %d cycles", len(snaps), m.Cycle())
	}
	cycleOf := func(ms *telemetry.MetricsSnapshot) uint64 {
		for _, c := range ms.Counters {
			if c.Name == "sim.cycles" {
				return c.Value
			}
		}
		t.Fatal("snapshot missing sim.cycles")
		return 0
	}
	for i := 1; i < len(snaps); i++ {
		if cycleOf(snaps[i]) <= cycleOf(snaps[i-1]) {
			t.Errorf("sample %d cycles %d not after sample %d cycles %d",
				i, cycleOf(snaps[i]), i-1, cycleOf(snaps[i-1]))
		}
	}
}

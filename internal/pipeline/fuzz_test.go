package pipeline_test

import (
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/chaos"
	"reuseiq/internal/interp"
	"reuseiq/internal/lockstep"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/prog"
	"reuseiq/internal/progen"
)

// checkEndState compares the drained pipeline's architectural state against a
// completed interpreter run.
func checkEndState(t *testing.T, tag string, src string, g *interp.Machine, m *pipeline.Machine) {
	t.Helper()
	if uint64(m.C.Commits) != g.State.Insts {
		t.Errorf("%s: committed %d, interp executed %d", tag, m.C.Commits, g.State.Insts)
	}
	// $at (r1) and $r21 are scratch; everything else must match.
	for i := 2; i < 32; i++ {
		if g.State.Int[i] != m.ArchInt(i) {
			t.Fatalf("%s: $r%d = %d, interp %d\nprogram:\n%s",
				tag, i, m.ArchInt(i), g.State.Int[i], src)
		}
	}
	for i := 0; i < 32; i++ {
		gv, mv := g.State.FP[i], m.ArchFP(i)
		if gv != mv && !(gv != gv && mv != mv) {
			t.Fatalf("%s: $f%d = %v, interp %v", tag, i, mv, gv)
		}
	}
	if !g.State.Mem.Equal(m.Mem) {
		t.Fatalf("%s: memory differs", tag)
	}
}

func runInterp(t *testing.T, tag string, p *prog.Program, maxInsts uint64) *interp.Machine {
	t.Helper()
	g := interp.New(p)
	g.MaxInsts = maxInsts
	if err := g.Run(); err != nil {
		t.Fatalf("%s interp: %v", tag, err)
	}
	return g
}

// TestFuzzDifferential runs randomly generated programs on the functional
// interpreter, the baseline pipeline, and the reuse pipeline at several
// issue-queue sizes, and requires identical architectural outcomes. Every
// pipeline runs under the lockstep oracle and invariant checker, so a bug is
// reported at the first divergent commit (cycle, seq, disassembly) rather
// than as an end-state diff after millions of instructions; the end-state
// comparison stays as a safety net behind the oracle.
func TestFuzzDifferential(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	cfgs := []pipeline.Config{
		pipeline.BaselineConfig(),
		pipeline.DefaultConfig(),
		pipeline.DefaultConfig().WithIQSize(32),
		pipeline.DefaultConfig().WithIQSize(128),
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := progen.Generate(seed, progen.DefaultConfig())
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := runInterp(t, "fuzz", p, 20_000_000)
		for ci, cfg := range cfgs {
			tag := t.Name()
			m := pipeline.New(cfg, p)
			lockstep.Attach(m, p)
			if err := m.Run(); err != nil {
				t.Fatalf("seed %d cfg %d: %v\n%s", seed, ci, err, m.StateSummary())
			}
			checkEndState(t, tag, src, g, m)
		}
	}
}

// TestChaosDifferential runs the differential fuzz under fault injection at a
// fixed seed: forced buffering revokes, flipped branch predictions, fetch
// stall storms, and latency jitter all fire (asserted via the injection
// counters), and every run must still match the golden model commit by
// commit. This proves the recovery machinery survives fault rates far above
// anything real workloads produce.
func TestChaosDifferential(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	var agg chaos.Counters
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := progen.Generate(seed, progen.DefaultConfig())
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := runInterp(t, "chaos", p, 20_000_000)
		cfg := pipeline.DefaultConfig()
		cfg.Chaos = chaos.DefaultConfig(0xC4A05 + seed)
		m := pipeline.New(cfg, p)
		lockstep.Attach(m, p)
		if err := m.Run(); err != nil {
			t.Fatalf("seed %d under chaos: %v\n%s", seed, err, m.StateSummary())
		}
		checkEndState(t, "chaos", src, g, m)
		agg.ForcedRevokes += m.Chaos.C.ForcedRevokes
		agg.FlippedPredictions += m.Chaos.C.FlippedPredictions
		agg.FetchStalls += m.Chaos.C.FetchStalls
		agg.JitteredIssues += m.Chaos.C.JitteredIssues
	}
	if agg.ForcedRevokes == 0 {
		t.Error("chaos never forced a buffering revoke")
	}
	if agg.FlippedPredictions == 0 {
		t.Error("chaos never flipped a prediction")
	}
	if agg.FetchStalls == 0 {
		t.Error("chaos never injected a fetch stall")
	}
	if agg.JitteredIssues == 0 {
		t.Error("chaos never jittered an issue latency")
	}
	t.Logf("injected: %d revokes, %d flips, %d stalls, %d jitters",
		agg.ForcedRevokes, agg.FlippedPredictions, agg.FetchStalls, agg.JitteredIssues)
}

// TestFuzzLargePrograms stresses deeper nesting and longer blocks with
// fewer seeds.
func TestFuzzLargePrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz")
	}
	cfg := progen.Config{MaxDepth: 4, MaxBlock: 16, MaxTrip: 20, Procs: 3}
	for seed := int64(100); seed < 110; seed++ {
		src := progen.Generate(seed, cfg)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := runInterp(t, "large", p, 50_000_000)
		m := pipeline.New(pipeline.DefaultConfig(), p)
		lockstep.Attach(m, p)
		if err := m.Run(); err != nil {
			t.Fatalf("seed %d pipeline: %v", seed, err)
		}
		checkEndState(t, "large", src, g, m)
	}
}

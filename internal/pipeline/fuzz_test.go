package pipeline

import (
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/interp"
	"reuseiq/internal/progen"
)

// TestFuzzDifferential runs randomly generated programs on the functional
// interpreter, the baseline pipeline, and the reuse pipeline at several
// issue-queue sizes, and requires identical architectural outcomes. This is
// the broadest correctness net over renaming, recovery, forwarding and the
// reuse state machine.
func TestFuzzDifferential(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	cfgs := []Config{
		BaselineConfig(),
		DefaultConfig(),
		DefaultConfig().WithIQSize(32),
		DefaultConfig().WithIQSize(128),
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := progen.Generate(seed, progen.DefaultConfig())
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := interp.New(p)
		g.MaxInsts = 20_000_000
		if err := g.Run(); err != nil {
			t.Fatalf("seed %d interp: %v", seed, err)
		}
		for ci, cfg := range cfgs {
			m := New(cfg, p)
			if err := m.Run(); err != nil {
				t.Fatalf("seed %d cfg %d: %v\n%s", seed, ci, err, m.stateSummary())
			}
			if uint64(m.C.Commits) != g.State.Insts {
				t.Errorf("seed %d cfg %d: committed %d, interp executed %d",
					seed, ci, m.C.Commits, g.State.Insts)
			}
			// $at (r1) and $r21 are scratch; everything else must match.
			for i := 2; i < 32; i++ {
				if g.State.Int[i] != m.ArchInt(i) {
					t.Fatalf("seed %d cfg %d: $r%d = %d, interp %d\nprogram:\n%s",
						seed, ci, i, m.ArchInt(i), g.State.Int[i], src)
				}
			}
			for i := 0; i < 32; i++ {
				gv, mv := g.State.FP[i], m.ArchFP(i)
				if gv != mv && !(gv != gv && mv != mv) {
					t.Fatalf("seed %d cfg %d: $f%d = %v, interp %v", seed, ci, i, mv, gv)
				}
			}
			if !g.State.Mem.Equal(m.Mem) {
				t.Fatalf("seed %d cfg %d: memory differs", seed, ci)
			}
		}
	}
}

// TestFuzzLargePrograms stresses deeper nesting and longer blocks with
// fewer seeds.
func TestFuzzLargePrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz")
	}
	cfg := progen.Config{MaxDepth: 4, MaxBlock: 16, MaxTrip: 20, Procs: 3}
	for seed := int64(100); seed < 110; seed++ {
		src := progen.Generate(seed, cfg)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := interp.New(p)
		g.MaxInsts = 50_000_000
		if err := g.Run(); err != nil {
			t.Fatalf("seed %d interp: %v", seed, err)
		}
		m := New(DefaultConfig(), p)
		if err := m.Run(); err != nil {
			t.Fatalf("seed %d pipeline: %v", seed, err)
		}
		if uint64(m.C.Commits) != g.State.Insts {
			t.Errorf("seed %d: commits %d vs %d", seed, m.C.Commits, g.State.Insts)
		}
		if !g.State.Mem.Equal(m.Mem) {
			t.Fatalf("seed %d: memory differs", seed)
		}
	}
}

package pipeline

import (
	"testing"

	"reuseiq/internal/asm"
)

func TestStatsSetConsistency(t *testing.T) {
	p := asm.MustAssemble(`
	li $r3, 500
l:	addi $r3, $r3, -1
	bne $r3, $zero, l
	halt
	`)
	m := runPipe(t, DefaultConfig(), p)
	s := m.StatsSet()
	if s.Get("sim.commits") != m.C.Commits {
		t.Error("commit counter mismatch")
	}
	if s.Get("rob.allocs") != s.Get("rename.front")+s.Get("rename.reuse") {
		t.Errorf("rob allocs %d != renames %d+%d",
			s.Get("rob.allocs"), s.Get("rename.front"), s.Get("rename.reuse"))
	}
	if s.Get("sim.gated_cycles") == 0 || s.Get("reuse.promotions") == 0 {
		t.Error("reuse counters missing from stats set")
	}
	if s.Get("il1.accesses") == 0 {
		t.Error("cache counters missing")
	}
	// Rendering is stable and non-empty.
	if len(s.String()) < 100 {
		t.Error("stats rendering too short")
	}
}

package pipeline

import (
	"reuseiq/internal/core"
	"reuseiq/internal/isa"
	"reuseiq/internal/lsq"
	"reuseiq/internal/rob"
)

// -------------------------------------------------------------- dispatch --

// dispatch renames up to DecodeWidth instructions per cycle and inserts them
// into the issue queue, ROB and LSQ. During Code Reuse the instructions come
// from the issue queue's reuse pointer instead of the decode latch.
//
//reuse:hotpath
func (m *Machine) dispatch() {
	if m.Ctl.GateActive() {
		m.reuseDispatch()
		return
	}
	for i := 0; i < m.Cfg.DecodeWidth && len(m.decodeLat) > 0; i++ {
		f := m.decodeLat[0]
		if !m.dispatchResourcesOK(f.in) {
			return
		}
		// Pop by copying down so the latch's backing array never slides
		// (append would otherwise reallocate it every few cycles).
		n := copy(m.decodeLat, m.decodeLat[1:])
		m.decodeLat = m.decodeLat[:n]
		info, promoted := m.dispatchOne(f)
		m.C.FrontRenames++
		if m.Rec != nil {
			m.Rec.OnDispatch(m.nextSeq, f.pc, f.in.Disasm(f.pc), false, m.cycle)
		}
		if m.nextSeq < m.telSeq {
			//reuse:allow-unguarded telSeq is nonzero only after AttachTelemetry caches Tel's cap
			m.Tel.InstDispatch(m.nextSeq, f.pc, false)
		}
		_ = info
		if promoted {
			// Code Reuse entered: gate the front end and flush
			// fetched-but-undispatched instructions; the reuse
			// pointer re-supplies them (paper §2.3).
			m.fetchQ = m.fetchQ[:0]
			m.decodeLat = m.decodeLat[:0]
			m.tracef("cycle %d: promoted to code reuse, %d buffered", m.cycle, m.IQ.ClassifiedCount())
			return
		}
	}
}

// dispatchResourcesOK checks structural resources for one instruction and
// records stall causes.
func (m *Machine) dispatchResourcesOK(in isa.Inst) bool {
	if m.ROB.Full() {
		m.C.DispatchStallROB++
		return false
	}
	if m.IQ.Free() == 0 {
		m.C.DispatchStallIQ++
		m.Ctl.OnIQFull()
		return false
	}
	if in.Op.IsMem() && m.LSQ.Full() {
		m.C.DispatchStallLSQ++
		return false
	}
	if d, ok := in.Dest(); ok && !m.RF.CanRename(d) {
		m.C.DispatchStallRegs++
		return false
	}
	return true
}

// dispatchOne renames and dispatches one front-end instruction. It returns
// the controller's decision and whether the queue promoted to Code Reuse.
func (m *Machine) dispatchOne(f fetched) (core.DispatchInfo, bool) {
	info := m.Ctl.OnDispatch(f.pc, f.in, f.predTaken, f.predTarget)

	seq := m.allocSeq()
	entry := core.Entry{
		Seq:          seq,
		PC:           f.pc,
		Inst:         f.in,
		LSQSlot:      -1,
		Classified:   info.Classify,
		StaticTaken:  f.predTaken,
		StaticTarget: f.predTarget,
	}
	oldPhys := m.renameInto(&entry)

	re := rob.Entry{
		Seq: seq, PC: f.pc, Inst: f.in,
		HasDest: entry.HasDest, PredTaken: f.predTaken, PredTarget: f.predTarget,
		IsLoad:  f.in.Op.Info().Class == isa.ClassLoad,
		IsStore: f.in.Op.Info().Class == isa.ClassStore,
		Halt:    f.in.Op == isa.OpHALT,
	}
	if entry.HasDest {
		d, _ := f.in.Dest()
		re.Dest = d
		re.NewPhys = entry.DestPhys
		re.OldPhys = oldPhys
	}
	slot, ok := m.ROB.Alloc(re)
	if !ok {
		panic("pipeline: ROB alloc after resource check")
	}
	entry.ROBSlot = slot

	if f.in.Op.IsMem() {
		ls, ok := m.LSQ.Alloc(lsq.Entry{
			Seq:     seq,
			IsStore: re.IsStore,
			IsFP:    f.in.Op == isa.OpLD || f.in.Op == isa.OpSD,
			Size:    memSize(f.in.Op),
		})
		if !ok {
			panic("pipeline: LSQ alloc after resource check")
		}
		entry.LSQSlot = ls
	}
	if _, ok := m.IQ.Dispatch(entry); !ok {
		panic("pipeline: IQ dispatch after resource check")
	}
	return info, info.Promote
}

// renameInto fills the entry's physical source and destination registers and
// returns the previous physical mapping of the destination (for rollback).
// It also snapshots per-source readiness, seeding the queue's wakeup index.
func (m *Machine) renameInto(e *core.Entry) (oldPhys int) {
	var srcs [2]isa.Reg
	e.NumSrc = e.Inst.SourceRegs(&srcs)
	for i := 0; i < e.NumSrc; i++ {
		s := srcs[i]
		e.SrcPhys[i] = m.RF.Lookup(s)
		e.SrcKind[i] = s.Kind
		e.SrcReady[i] = m.RF.Ready(s.Kind, e.SrcPhys[i])
	}
	if d, ok := e.Inst.Dest(); ok {
		var newP int
		newP, oldPhys = m.RF.Rename(d)
		e.HasDest = true
		e.DestPhys = newP
		e.DestKind = d.Kind
	}
	return oldPhys
}

// reuseDispatch re-renames up to DecodeWidth issued buffered entries,
// supplying instructions from the issue queue itself while the front end is
// gated.
//
//reuse:hotpath
func (m *Machine) reuseDispatch() {
	idxs := m.Ctl.ReusableEntries(m.Cfg.DecodeWidth)
	consumed := 0
	for _, pos := range idxs {
		e := m.IQ.Entry(pos)
		in := e.Inst
		// Unlike front-end dispatch, reuse updates the queue entry in
		// place, so no free issue-queue slot is needed.
		if m.ROB.Full() {
			m.C.DispatchStallROB++
			break
		}
		if in.Op.IsMem() && m.LSQ.Full() {
			m.C.DispatchStallLSQ++
			break
		}
		if d, ok := in.Dest(); ok && !m.RF.CanRename(d) {
			m.C.DispatchStallRegs++
			break
		}
		seq := m.allocSeq()

		// Re-rename from the logical register list.
		var srcs [2]isa.Reg
		nsrc := in.SourceRegs(&srcs)
		var srcPhys [2]int
		var srcReady [2]bool
		for i := 0; i < nsrc; i++ {
			srcPhys[i] = m.RF.Lookup(srcs[i])
			srcReady[i] = m.RF.Ready(srcs[i].Kind, srcPhys[i])
		}
		destPhys := -1
		var oldPhys int
		var dest isa.Reg
		hasDest := false
		if d, ok := in.Dest(); ok {
			destPhys, oldPhys = m.RF.Rename(d)
			dest = d
			hasDest = true
		}

		re := rob.Entry{
			Seq: seq, PC: e.PC, Inst: in,
			HasDest:    hasDest,
			PredTaken:  e.StaticTaken,
			PredTarget: e.StaticTarget,
			IsLoad:     in.Op.Info().Class == isa.ClassLoad,
			IsStore:    in.Op.Info().Class == isa.ClassStore,
			Halt:       in.Op == isa.OpHALT,
			Reused:     true,
		}
		if hasDest {
			re.Dest = dest
			re.NewPhys = destPhys
			re.OldPhys = oldPhys
		}
		slot, ok := m.ROB.Alloc(re)
		if !ok {
			panic("pipeline: ROB alloc after resource check (reuse)")
		}
		lsqSlot := -1
		if in.Op.IsMem() {
			ls, ok := m.LSQ.Alloc(lsq.Entry{
				Seq:     seq,
				IsStore: re.IsStore,
				IsFP:    in.Op == isa.OpLD || in.Op == isa.OpSD,
				Size:    memSize(in.Op),
			})
			if !ok {
				panic("pipeline: LSQ alloc after resource check (reuse)")
			}
			lsqSlot = ls
		}
		m.IQ.PartialUpdate(pos, seq, slot, lsqSlot, srcPhys, srcReady, destPhys)
		m.C.ReuseRenames++
		consumed++
		if m.Rec != nil {
			m.Rec.OnDispatch(seq, e.PC, in.Disasm(e.PC), true, m.cycle)
		}
		if seq < m.telSeq {
			//reuse:allow-unguarded telSeq is nonzero only after AttachTelemetry caches Tel's cap
			m.Tel.InstDispatch(seq, e.PC, true)
		}
	}
	m.Ctl.ConsumeReused(consumed)
	if m.Tel != nil && consumed > 0 {
		m.Tel.ReuseSupplied(consumed)
	}
}

func (m *Machine) allocSeq() uint64 {
	m.nextSeq++
	return m.nextSeq
}

// ---------------------------------------------------------------- decode --

//reuse:hotpath
func (m *Machine) decode() {
	if m.Ctl.GateActive() {
		return
	}
	for len(m.decodeLat) < m.Cfg.DecodeWidth && len(m.fetchQ) > 0 {
		m.decodeLat = append(m.decodeLat, m.fetchQ[0])
		n := copy(m.fetchQ, m.fetchQ[1:])
		m.fetchQ = m.fetchQ[:n]
		m.C.Decodes++
	}
}

// ----------------------------------------------------------------- fetch --

//reuse:hotpath
func (m *Machine) fetch() {
	if m.Ctl.GateActive() || m.fetchHalted || m.cycle < m.fetchStallUntil {
		return
	}
	// Fault injection: a fetch stall storm (e.g. an instruction-fetch
	// backend hiccup). Purely a timing event.
	if n := m.Chaos.FetchStall(); n > 0 {
		m.fetchStallUntil = m.cycle + uint64(n)
		if m.Tel != nil {
			m.Tel.ChaosStall(n)
		}
		return
	}
	m.C.FetchCycles++
	for n := 0; n < m.Cfg.FetchWidth && len(m.fetchQ) < m.Cfg.FetchQueueSize; n++ {
		in, ok := m.Prog.InstAt(m.fetchPC)
		if !ok {
			// Wrong-path fetch ran outside the text segment; stall
			// until a recovery redirects the PC.
			m.fetchHalted = true
			return
		}
		if m.LC != nil && m.LC.Supplying(m.fetchPC) {
			// The prior-art loop cache delivers this instruction; the
			// instruction cache stays idle.
			m.C.LoopCacheSupplies++
		} else {
			lat := m.Hier.FetchInst(m.fetchPC)
			if lat > m.Cfg.Mem.L1I.HitLat {
				// Instruction cache miss: retry after the fill.
				m.fetchStallUntil = m.cycle + uint64(lat)
				return
			}
		}
		f := fetched{pc: m.fetchPC, in: in}
		if in.Op.IsControl() {
			f.isControl = true
			p := m.BP.Predict(m.fetchPC, in)
			f.predTaken = p.Taken
			f.predTarget = p.Target
			// Fault injection: invert a conditional branch's predicted
			// direction. The target is static for conditional branches,
			// so the flip is recoverable like any misprediction.
			if in.Op.Info().Class == isa.ClassBranch && m.Chaos.FlipPrediction() {
				f.predTaken = !f.predTaken
				if m.Tel != nil {
					m.Tel.ChaosFlip(m.fetchPC)
				}
			}
		}
		if m.LC != nil {
			m.LC.Observe(m.fetchPC, in, f.predTaken)
		}
		m.fetchQ = append(m.fetchQ, f)
		m.C.Fetches++
		if in.Op == isa.OpHALT {
			m.fetchHalted = true
			return
		}
		if f.predTaken {
			m.fetchPC = f.predTarget
			return // a taken control transfer ends the fetch group
		}
		m.fetchPC += 4
	}
}

package pipeline_test

import (
	"strings"
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/pipeline"
)

// A machine configured with no integer ALUs can never issue the ALU op at
// the ROB head, so the watchdog must fire — and its error must name the
// stuck instruction (seq, pc, disassembly) so a deadlock is debuggable from
// the message alone.
func TestWatchdogNamesROBHead(t *testing.T) {
	p := asm.MustAssemble(`
	.text
main:	addi $r2, $zero, 7
	addi $r3, $r2, 1
	halt
	`)
	cfg := pipeline.DefaultConfig()
	cfg.FU.NumIntALU = 0
	cfg.WatchdogCycles = 200
	m := pipeline.New(cfg, p)
	err := m.Run()
	if err == nil {
		t.Fatal("deadlocked machine ran to completion")
	}
	msg := err.Error()
	for _, want := range []string{"no commit for 200 cycles", "head={seq=1", "addi", "done=false"} {
		if !strings.Contains(msg, want) {
			t.Errorf("watchdog error %q missing %q", msg, want)
		}
	}
}

// The cycle-budget abort must carry the same machine snapshot.
func TestCycleBudgetNamesROBHead(t *testing.T) {
	p := asm.MustAssemble(`
	.text
main:	addi $r2, $zero, 7
loop:	addi $r2, $r2, 1
	bne $r2, $zero, loop
	halt
	`)
	cfg := pipeline.DefaultConfig()
	cfg.MaxCycles = 300
	m := pipeline.New(cfg, p)
	err := m.Run()
	if err == nil {
		t.Fatal("unbounded loop finished inside a 300-cycle budget")
	}
	msg := err.Error()
	for _, want := range []string{"cycle budget 300 exhausted", "head={seq="} {
		if !strings.Contains(msg, want) {
			t.Errorf("budget error %q missing %q", msg, want)
		}
	}
}

package pipeline

import (
	"cmp"
	"fmt"
	"slices"

	"reuseiq/internal/core"
	"reuseiq/internal/isa"
	"reuseiq/internal/lsq"
	"reuseiq/internal/rob"
)

// ---------------------------------------------------------------- commit --

//reuse:hotpath
func (m *Machine) commit() {
	for i := 0; i < m.Cfg.CommitWidth && !m.ROB.Empty(); i++ {
		h := m.ROB.Head()
		if !h.Done {
			return
		}
		if h.Halt {
			m.halted = true
			m.lastCommit = m.cycle
			if m.OnCommit != nil {
				if err := m.OnCommit(Commit{
					Cycle: m.cycle, Seq: h.Seq, PC: h.PC, Inst: h.Inst,
					Reused: h.Reused, Halted: true,
				}); err != nil {
					m.hookErr = err
				}
			}
			return
		}
		var c Commit
		if m.OnCommit != nil {
			c = Commit{
				Cycle: m.cycle, Seq: h.Seq, PC: h.PC, Inst: h.Inst,
				Reused: h.Reused, IsLoad: h.IsLoad, IsStore: h.IsStore,
				Taken: h.ActTaken, Target: h.ActTarget,
			}
			if h.HasDest {
				c.HasDest = true
				c.Dest = h.Dest
				if h.Dest.Kind == isa.KindFP {
					c.DestF = m.RF.PeekFP(h.NewPhys)
				} else {
					c.DestI = m.RF.PeekInt(h.NewPhys)
				}
			}
		}
		if h.IsStore {
			e := m.commitStore()
			c.StoreAddr, c.StoreI, c.StoreF = e.Addr, e.DataI, e.DataF
		}
		if h.IsLoad {
			e := m.LSQ.PopHead()
			c.LoadAddr = e.Addr
		}
		if h.HasDest {
			m.RF.Release(h.Dest.Kind, h.OldPhys)
		}
		cls := h.Inst.Op.Info().Class
		if cls == isa.ClassBranch {
			m.C.BranchesCommitted++
			if h.ActTaken {
				m.C.TakenCommitted++
			}
		}
		// Train the predictor with correct-path outcomes. Code Reuse
		// gates prediction lookups (paper §2.3) but commit-side updates
		// continue, keeping the tables warm for the loop exit.
		if h.Inst.Op.IsControl() {
			m.BP.Update(h.PC, h.Inst, h.ActTaken, h.ActTarget)
		}
		switch {
		case h.IsLoad:
			m.C.LoadsCommitted++
		case h.IsStore:
			m.C.StoresCommitted++
		}
		if h.Reused {
			m.C.ReusedCommitted++
		}
		if m.LogCommits {
			m.commitLog = append(m.commitLog, h.PC)
		}
		if m.Rec != nil {
			m.Rec.OnCommit(h.Seq, m.cycle)
		}
		if m.Tel != nil {
			if h.Seq < m.telSeq {
				m.Tel.InstCommit(h.Seq, h.PC)
			}
			if h.IssueCycle > 0 {
				m.Tel.CommitLatency(m.cycle - h.IssueCycle)
			}
		}
		if m.OnCommit != nil {
			if err := m.OnCommit(c); err != nil {
				m.hookErr = err
				return
			}
		}
		m.ROB.PopHead()
		m.C.Commits++
		m.lastCommit = m.cycle
	}
}

// commitStore writes the ROB head's store to architectural memory and the
// data cache, returning the drained LSQ entry (address and data) for the
// OnCommit record.
func (m *Machine) commitStore() lsq.Entry {
	e := m.LSQ.PopHead()
	if !e.IsStore || !e.AddrReady {
		panic("pipeline: committing store with unresolved LSQ head")
	}
	h := m.ROB.Head()
	switch h.Inst.Op {
	case isa.OpSW:
		m.Mem.WriteI32(e.Addr, e.DataI)
	case isa.OpSB:
		m.Mem.Write8(e.Addr, byte(e.DataI))
	case isa.OpSH:
		m.Mem.Write16(e.Addr, uint16(e.DataI))
	case isa.OpSD:
		m.Mem.WriteF64(e.Addr, e.DataF)
	}
	m.Hier.AccessData(e.Addr, true)
	m.C.StoreCommitAccesses++
	return e
}

// ------------------------------------------------------------- writeback --

//reuse:hotpath
func (m *Machine) writeback() {
	// Collect completions for this cycle in program order; older results
	// must write back (and possibly trigger recovery) before younger ones.
	done := m.done[:0]
	kept := m.execQ[:0]
	for _, e := range m.execQ {
		if e.done <= m.cycle {
			done = append(done, e)
		} else {
			kept = append(kept, e)
		}
	}
	m.execQ = kept
	m.done = done
	slices.SortFunc(done, func(a, b execEntry) int { return cmp.Compare(a.seq, b.seq) })

	// barrier guards against completions squashed by a recovery triggered
	// earlier in this same batch (their execQ entries were already drained
	// into done, so the recovery-time filter cannot catch them).
	barrier := ^uint64(0)
	for _, e := range done {
		if e.seq > barrier {
			continue
		}
		r := m.ROB.Get(e.robSlot)
		if r.Seq != e.seq {
			continue // squashed while in flight
		}
		if r.HasDest {
			if r.Dest.Kind == isa.KindFP {
				m.RF.WriteFP(r.NewPhys, e.valF)
			} else {
				m.RF.WriteInt(r.NewPhys, e.valI)
			}
			// Result-tag broadcast wakes up issue queue consumers. The
			// counters charge the CAM compare across all live entries the
			// hardware would perform; Wake only touches true dependents.
			m.C.WakeupBroadcasts++
			m.C.WakeupOccupancySum += uint64(m.IQ.Len())
			m.IQ.Wake(r.Dest.Kind, r.NewPhys)
		}
		r.Done = true
		if m.Rec != nil {
			m.Rec.OnComplete(r.Seq, m.cycle)
		}
		if r.Seq < m.telSeq {
			//reuse:allow-unguarded telSeq is nonzero only after AttachTelemetry caches Tel's cap
			m.Tel.InstComplete(r.Seq, r.PC)
		}
		if r.Inst.Op.IsControl() {
			r.Mispred = r.ActTarget != predictedNextPC(r)
			if r.Mispred {
				m.recover(r)
				barrier = r.Seq
			}
		}
	}
}

// predictedNextPC returns the next PC the front end followed after this
// control instruction.
func predictedNextPC(e *rob.Entry) uint32 {
	if e.PredTaken {
		return e.PredTarget
	}
	return e.PC + 4
}

// recover squashes everything younger than the mispredicted control
// instruction e, rolls back the rename map, redirects fetch, and informs the
// reuse controller (revoking a buffering or exiting Code Reuse).
func (m *Machine) recover(e *rob.Entry) {
	m.C.Mispredicts++
	if m.Tel != nil {
		m.Tel.Mispredict(e.PC, e.ActTarget, e.Seq)
	}
	m.tracef("cycle %d: mispredict seq=%d pc=0x%x -> 0x%x (state %v)",
		m.cycle, e.Seq, e.PC, e.ActTarget, m.Ctl.State())

	// Order matters: the controller must clean up classification bits
	// (removing dead buffered entries) before the seq-based squash.
	m.Ctl.OnRecovery()

	removed := m.ROB.SquashAfter(e.Seq)
	for i := range removed {
		en := &removed[i]
		if en.HasDest {
			m.RF.Rollback(en.Dest, en.NewPhys, en.OldPhys)
		}
		if m.Rec != nil {
			m.Rec.OnSquash(en.Seq)
		}
	}
	m.IQ.SquashAfter(e.Seq)
	m.LSQ.SquashAfter(e.Seq)
	kept := m.execQ[:0]
	for _, x := range m.execQ {
		if x.seq <= e.Seq {
			kept = append(kept, x)
		}
	}
	m.execQ = kept
	m.fetchQ = m.fetchQ[:0]
	m.decodeLat = m.decodeLat[:0]
	m.fetchPC = e.ActTarget
	m.fetchStallUntil = m.cycle + uint64(m.Cfg.MispredictPenalty)
	m.fetchHalted = false
	if m.LC != nil {
		m.LC.OnRedirect()
	}
}

// ----------------------------------------------------------------- issue --

// issueCand is one ready queue entry competing for an issue port.
type issueCand struct {
	seq  uint64
	slot int32
}

//reuse:hotpath
func (m *Machine) issue() {
	// The modeled select logic examines every live entry each cycle; the
	// software walks only the queue's ready-candidate index.
	m.C.IssueCycleScans += uint64(m.IQ.Len())
	m.IQ.SelectScans += uint64(m.IQ.Len())

	m.resolveStoreAddresses()

	// Select ready entries oldest first. Slots are stable, so no position
	// compensation is needed when an issued entry is removed.
	cands := m.cands[:0]
	for _, slot := range m.IQ.ReadySlots() {
		cands = append(cands, issueCand{seq: m.IQ.Entry(int(slot)).Seq, slot: slot})
	}
	m.cands = cands
	slices.SortFunc(cands, func(a, b issueCand) int { return cmp.Compare(a.seq, b.seq) })

	issued := 0
	for _, c := range cands {
		if issued >= m.Cfg.IssueWidth {
			break
		}
		if m.tryIssueEntry(int(c.slot)) {
			issued++
		}
	}
}

// resolveStoreAddresses performs store address generation separately from
// store data capture (as the R10000 and SimpleScalar do): a store whose base
// register is ready publishes its address to the LSQ even while its data
// operand is still being computed. Without this split, the conservative
// "loads wait for older store addresses" rule would serialize every load
// behind dependent stores and destroy memory-level parallelism.
//
//reuse:hotpath
func (m *Machine) resolveStoreAddresses() {
	resolved := 0
	//reuse:allow-alloc non-escaping closure: ForEachPendingStore calls f inline and never retains it
	m.IQ.ForEachPendingStore(func(slot int) bool {
		if resolved >= m.Cfg.IssueWidth {
			return false
		}
		e := m.IQ.Entry(slot)
		le := m.LSQ.Get(e.LSQSlot)
		if le.AddrReady || le.Seq != e.Seq {
			m.IQ.StoreResolved(slot)
			return true
		}
		// The base register is the first source (rs).
		if !e.SrcReady[0] {
			return true
		}
		base := m.RF.ReadInt(e.SrcPhys[0])
		le.Addr = uint32(base + e.Inst.Imm)
		le.AddrReady = true
		m.IQ.StoreResolved(slot)
		resolved++
		return true
	})
}

// tryIssueEntry attempts to issue the queue entry in slot. It reports
// whether the instruction issued (conventional entries are then removed;
// classified entries stay with their issue state bit set).
func (m *Machine) tryIssueEntry(slot int) bool {
	// Slots are stable, so the entry can be read in place (a value copy
	// would be forced onto the heap by the debug path taking its address).
	// MarkIssued frees a conventional entry's slot, so everything needed
	// after it is read into locals first.
	e := m.IQ.Entry(slot)
	op := e.Inst.Op
	cls := op.Info().Class

	// Loads: conservative disambiguation before consuming a port.
	if cls == isa.ClassLoad && !m.LSQ.OlderStoreAddrsKnown(e.Seq) {
		return false
	}

	if !m.FUs.Available(op, m.cycle) {
		return false
	}

	// Read operands from the physical register file.
	ops := isa.Operands{PC: e.PC}
	info := op.Info()
	srcIdx := 0
	if info.ReadsRs {
		if info.RsFP {
			ops.FA = m.RF.ReadFP(e.SrcPhys[srcIdx])
		} else {
			ops.A = m.RF.ReadInt(e.SrcPhys[srcIdx])
		}
		srcIdx++
	}
	if info.ReadsRt {
		if info.RtFP {
			ops.FB = m.RF.ReadFP(e.SrcPhys[srcIdx])
		} else {
			ops.B = m.RF.ReadInt(e.SrcPhys[srcIdx])
		}
	}
	r := isa.Eval(e.Inst, ops)

	var lat int
	var valI int32
	var valF float64
	switch cls {
	case isa.ClassLoad:
		res, dI, dF := m.LSQ.SearchForLoad(e.Seq, r.Addr, memSize(op))
		if res == lsq.MustWait {
			return false
		}
		if _, ok := m.FUs.TryIssue(op, m.cycle); !ok {
			return false
		}
		le := m.LSQ.Get(e.LSQSlot)
		le.AddrReady = true
		le.Addr = r.Addr
		le.Done = true
		if res == lsq.Forwarded {
			lat = 2 // address generation + bypass
			valI, valF = applyLoadSemantics(op, dI, dF)
		} else {
			lat = 1 + m.Hier.AccessData(r.Addr, false)
			valI, valF = m.loadFromMemory(op, r.Addr)
		}
	case isa.ClassStore:
		if _, ok := m.FUs.TryIssue(op, m.cycle); !ok {
			return false
		}
		le := m.LSQ.Get(e.LSQSlot)
		le.AddrReady = true
		le.Addr = r.Addr
		le.DataReady = true
		le.DataI = r.StoreI
		le.DataF = r.StoreF
		le.Done = true
		lat = 1
	default:
		l, ok := m.FUs.TryIssue(op, m.cycle)
		if !ok {
			return false
		}
		lat = l
		valI, valF = r.I, r.F
	}
	// Fault injection: inflate the result latency, modeling a slow unit.
	if j := m.Chaos.Jitter(); j > 0 {
		lat += j
		if m.Tel != nil {
			m.Tel.ChaosJitter(j, e.Seq)
		}
	}

	// Record control resolution in the ROB for the writeback check.
	re := m.ROB.Get(e.ROBSlot)
	re.IssueCycle = m.cycle
	if op.IsControl() {
		re.ActTaken = r.Taken
		if r.Taken {
			re.ActTarget = r.Target
		} else {
			re.ActTarget = e.PC + 4
		}
	}

	if m.DebugIssue != nil {
		m.DebugIssue(e.Seq, e.PC, fmtIssue(e, ops, valI))
	}
	if m.Rec != nil {
		m.Rec.OnIssue(e.Seq, m.cycle)
	}
	if e.Seq < m.telSeq {
		//reuse:allow-unguarded telSeq is nonzero only after AttachTelemetry caches Tel's cap
		m.Tel.InstIssue(e.Seq, e.PC)
	}
	robSlot, seq := e.ROBSlot, e.Seq
	m.IQ.MarkIssued(slot)
	m.execQ = append(m.execQ, execEntry{
		robSlot: robSlot, seq: seq, done: m.cycle + uint64(lat),
		valI: valI, valF: valF,
	})
	return true
}

func memSize(op isa.Op) uint8 {
	switch op {
	case isa.OpLB, isa.OpLBU, isa.OpSB:
		return 1
	case isa.OpLH, isa.OpLHU, isa.OpSH:
		return 2
	case isa.OpLD, isa.OpSD:
		return 8
	}
	return 4
}

// applyLoadSemantics narrows a forwarded store value the way the load would
// read it from memory (sign or zero extension for sub-word loads).
func applyLoadSemantics(op isa.Op, dI int32, dF float64) (int32, float64) {
	switch op {
	case isa.OpLB:
		return int32(int8(dI)), 0
	case isa.OpLBU:
		return int32(uint8(dI)), 0
	case isa.OpLH:
		return int32(int16(dI)), 0
	case isa.OpLHU:
		return int32(uint16(dI)), 0
	case isa.OpLD:
		return 0, dF
	}
	return dI, 0
}

func (m *Machine) loadFromMemory(op isa.Op, addr uint32) (int32, float64) {
	switch op {
	case isa.OpLW:
		return m.Mem.ReadI32(addr), 0
	case isa.OpLB:
		return int32(int8(m.Mem.Read8(addr))), 0
	case isa.OpLBU:
		return int32(m.Mem.Read8(addr)), 0
	case isa.OpLH:
		return int32(int16(m.Mem.Read16(addr))), 0
	case isa.OpLHU:
		return int32(m.Mem.Read16(addr)), 0
	case isa.OpLD:
		return 0, m.Mem.ReadF64(addr)
	}
	//reuse:allow-alloc not-a-load panic: unreachable for programs the decoder accepts
	panic("pipeline: not a load: " + op.String())
}

//reuse:allow-alloc debug issue formatter; called only under the DebugIssue nil guard
func fmtIssue(e *core.Entry, ops isa.Operands, valI int32) string {
	return fmt.Sprintf("issue seq=%d pc=0x%x %-24s A=%d B=%d src=%v val=%d",
		e.Seq, e.PC, e.Inst.Disasm(e.PC), ops.A, ops.B, e.SrcPhys[:e.NumSrc], valI)
}

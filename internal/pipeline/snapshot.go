// Snapshot support: Machine.Snapshot exports the complete architectural and
// microarchitectural state of a machine between cycles, and Resume rebuilds
// a machine from such an image whose subsequent execution is bit-identical
// to the original never having stopped. The wire encoding lives in
// internal/snapshot; this file owns what "complete state" means and the
// validation that makes restoring an untrusted image safe.
//
// Not part of the image, by design:
//   - hooks (OnCommit, OnCycle, OnSample, Trace, Rec, Tel, DebugIssue) — the
//     restoring process re-attaches its own observers;
//   - the per-cycle scratch buffers (done, cands) — empty between cycles;
//   - the commit log — observational, unbounded, and reconstructible by
//     re-running with LogCommits from the start.
package pipeline

import (
	"errors"
	"fmt"

	"reuseiq/internal/altfe"
	"reuseiq/internal/bpred"
	"reuseiq/internal/chaos"
	"reuseiq/internal/core"
	"reuseiq/internal/fu"
	"reuseiq/internal/isa"
	"reuseiq/internal/lsq"
	"reuseiq/internal/mem"
	"reuseiq/internal/prog"
	"reuseiq/internal/rename"
	"reuseiq/internal/rob"
)

// FetchedState is the serializable image of one fetch-queue or decode-latch
// entry.
type FetchedState struct {
	PC         uint32
	Inst       isa.Inst
	IsControl  bool
	PredTaken  bool
	PredTarget uint32
}

// ExecState is the serializable image of one in-flight execution.
type ExecState struct {
	ROBSlot int
	Seq     uint64
	Done    uint64 // absolute completion cycle
	//reuse:nodigest architectural value; the digest hashes microarchitectural structure, values are extrapolated
	ValI int32
	//reuse:nodigest architectural value; the digest hashes microarchitectural structure, values are extrapolated
	ValF float64
}

// MachineState is the complete serializable image of a Machine, aggregating
// the component images. Snapshot/Resume round-trips through it; the
// internal/snapshot package encodes it to bytes.
type MachineState struct {
	Cycle           uint64
	NextSeq         uint64
	FetchPC         uint32
	FetchStallUntil uint64
	FetchHalted     bool
	Halted          bool
	//reuse:nodigest watchdog bookkeeping, extrapolated across a skip like the counters
	LastCommit uint64

	//reuse:nodigest monotonic counters, extrapolated across a skip by the fast-forward engine
	C Counters

	FetchQ    []FetchedState
	DecodeLat []FetchedState
	ExecQ     []ExecState

	//reuse:nodigest architectural data memory; the digest hashes microarchitectural structure, values are extrapolated
	Pages []prog.PageImage

	RF   rename.State
	ROB  rob.State
	LSQ  lsq.State
	IQ   core.QueueState
	Ctl  core.ControllerState
	Hier mem.HierarchyState
	BP   bpred.State
	FUs  fu.State
	//reuse:nodigest the engine stands down under chaos injection; a faulted run is never a provable steady state
	Chaos chaos.State

	HasLC bool
	LC    altfe.LoopCacheState
}

// Snapshot exports the machine's state. It must be taken between cycles
// (never from inside a Step hook other than OnCycle/OnSample, which run at
// cycle end); RunBreakable's break points and the experiment harness's
// checkpoint tap both satisfy this.
//
//reuse:export
//reuse:deterministic
func (m *Machine) Snapshot() *MachineState {
	st := &MachineState{
		Cycle:           m.cycle,
		NextSeq:         m.nextSeq,
		FetchPC:         m.fetchPC,
		FetchStallUntil: m.fetchStallUntil,
		FetchHalted:     m.fetchHalted,
		Halted:          m.halted,
		LastCommit:      m.lastCommit,
		C:               m.C,
		Pages:           m.Mem.ExportPages(),
		RF:              m.RF.ExportState(),
		ROB:             m.ROB.ExportState(),
		LSQ:             m.LSQ.ExportState(),
		IQ:              m.IQ.ExportState(),
		Ctl:             m.Ctl.ExportState(),
		Hier:            m.Hier.ExportState(),
		BP:              m.BP.ExportState(),
		FUs:             m.FUs.ExportState(),
		Chaos:           m.Chaos.ExportState(),
	}
	st.FetchQ = exportFetched(m.fetchQ)
	st.DecodeLat = exportFetched(m.decodeLat)
	st.ExecQ = make([]ExecState, len(m.execQ))
	for i, e := range m.execQ {
		st.ExecQ[i] = ExecState{ROBSlot: e.robSlot, Seq: e.seq, Done: e.done, ValI: e.valI, ValF: e.valF}
	}
	if m.LC != nil {
		st.HasLC = true
		st.LC = m.LC.ExportState()
	}
	return st
}

func exportFetched(in []fetched) []FetchedState {
	out := make([]FetchedState, len(in))
	for i, f := range in {
		out[i] = FetchedState{PC: f.pc, Inst: f.in, IsControl: f.isControl,
			PredTaken: f.predTaken, PredTarget: f.predTarget}
	}
	return out
}

// MaxExecQ bounds the in-flight execution list in a restored image. Live
// lists hold at most a few hundred entries (issue width times the longest
// latency, plus squashed stragglers); the cap exists so a corrupt image
// cannot demand a huge allocation. Exported so the snapshot decoder applies
// the same bound before allocating.
const MaxExecQ = 1 << 16

// Resume builds a machine from cfg and p and restores st into it. The
// configuration and program must be the ones the snapshot was taken under
// (the snapshot wire format fingerprints both); structural mismatches and
// internally inconsistent images are rejected with an error.
func Resume(cfg Config, p *prog.Program, st *MachineState) (*Machine, error) {
	m := New(cfg, p)
	if err := m.load(st); err != nil {
		return nil, fmt.Errorf("pipeline: resume: %w", err)
	}
	return m, nil
}

// load applies st to a freshly built machine.
//
//reuse:import
func (m *Machine) load(st *MachineState) error {
	cfg := &m.Cfg
	if len(st.FetchQ) > cfg.FetchQueueSize+cfg.FetchWidth {
		return fmt.Errorf("fetch queue holds %d entries, cap %d", len(st.FetchQ), cfg.FetchQueueSize+cfg.FetchWidth)
	}
	if len(st.DecodeLat) > cfg.DecodeWidth {
		return fmt.Errorf("decode latch holds %d entries, cap %d", len(st.DecodeLat), cfg.DecodeWidth)
	}
	if len(st.ExecQ) > MaxExecQ {
		return fmt.Errorf("execution list holds %d entries, cap %d", len(st.ExecQ), MaxExecQ)
	}
	for i, e := range st.ExecQ {
		if e.ROBSlot < 0 || e.ROBSlot >= cfg.ROBSize {
			return fmt.Errorf("execution list entry %d targets ROB slot %d of %d", i, e.ROBSlot, cfg.ROBSize)
		}
	}
	if err := m.Mem.ImportPages(st.Pages); err != nil {
		return err
	}
	if err := m.RF.ImportState(st.RF); err != nil {
		return err
	}
	if err := m.ROB.ImportState(st.ROB); err != nil {
		return err
	}
	if err := m.validateROBEntries(&st.ROB); err != nil {
		return err
	}
	if err := m.LSQ.ImportState(st.LSQ); err != nil {
		return err
	}
	if err := m.IQ.ImportState(st.IQ); err != nil {
		return err
	}
	if err := m.validateIQEntries(&st.IQ); err != nil {
		return err
	}
	if err := m.Ctl.ImportState(st.Ctl); err != nil {
		return err
	}
	if err := m.Hier.ImportState(st.Hier); err != nil {
		return err
	}
	if err := m.BP.ImportState(st.BP); err != nil {
		return err
	}
	if err := m.FUs.ImportState(st.FUs); err != nil {
		return err
	}
	// Bound the PRNG replay before running it: the injector draws at most a
	// few times per fetched/issued instruction and once per cycle, so a draw
	// count beyond this is a corrupt image, not a long run.
	maxDraws := (st.Cycle+1)*uint64(2+cfg.FetchWidth+2*cfg.IssueWidth) + 64
	if st.Chaos.Draws > maxDraws {
		return fmt.Errorf("chaos stream position %d exceeds bound %d for cycle %d",
			st.Chaos.Draws, maxDraws, st.Cycle)
	}
	if err := m.Chaos.ImportState(st.Chaos); err != nil {
		return err
	}
	if st.HasLC != (m.LC != nil) {
		return fmt.Errorf("loop cache presence %v, configuration has %v", st.HasLC, m.LC != nil)
	}
	if m.LC != nil {
		if err := m.LC.ImportState(st.LC); err != nil {
			return err
		}
	}

	m.cycle = st.Cycle
	m.nextSeq = st.NextSeq
	m.fetchPC = st.FetchPC
	m.fetchStallUntil = st.FetchStallUntil
	m.fetchHalted = st.FetchHalted
	m.halted = st.Halted
	m.lastCommit = st.LastCommit
	m.C = st.C
	m.fetchQ = importFetched(m.fetchQ, st.FetchQ)
	m.decodeLat = importFetched(m.decodeLat, st.DecodeLat)
	m.execQ = m.execQ[:0]
	for _, e := range st.ExecQ {
		m.execQ = append(m.execQ, execEntry{robSlot: e.ROBSlot, seq: e.Seq, done: e.Done, valI: e.ValI, valF: e.ValF})
	}
	return nil
}

func importFetched(dst []fetched, in []FetchedState) []fetched {
	dst = dst[:0]
	for _, f := range in {
		dst = append(dst, fetched{pc: f.PC, in: f.Inst, isControl: f.IsControl,
			predTaken: f.PredTaken, predTarget: f.PredTarget})
	}
	return dst
}

// validateROBEntries checks the register fields of in-flight ROB entries
// against the physical register file sizes (the ROB itself cannot: it does
// not know them).
func (m *Machine) validateROBEntries(st *rob.State) error {
	for i := range st.Ring {
		e := &st.Ring[i]
		if !st.Used[i] || !e.HasDest {
			continue
		}
		if e.Dest.Kind > isa.KindFP {
			return fmt.Errorf("ROB slot %d has invalid destination kind %d", i, e.Dest.Kind)
		}
		phys, arch := m.Cfg.IntPhysRegs, isa.NumIntRegs
		if e.Dest.Kind == isa.KindFP {
			phys, arch = m.Cfg.FPPhysRegs, isa.NumFPRegs
		}
		if int(e.Dest.Num) >= arch {
			return fmt.Errorf("ROB slot %d destination register %d of %d", i, e.Dest.Num, arch)
		}
		if e.NewPhys < 0 || e.NewPhys >= phys || e.OldPhys < 0 || e.OldPhys >= phys {
			return fmt.Errorf("ROB slot %d physical registers %d/%d of %d", i, e.NewPhys, e.OldPhys, phys)
		}
	}
	return nil
}

// validateIQEntries checks the physical register and queue-slot references
// of live issue queue entries against the machine's configuration.
func (m *Machine) validateIQEntries(st *core.QueueState) error {
	for i := range st.Slots {
		if !st.Meta[i].Valid {
			continue
		}
		e := &st.Slots[i]
		if e.ROBSlot < 0 || e.ROBSlot >= m.Cfg.ROBSize {
			return fmt.Errorf("IQ slot %d targets ROB slot %d of %d", i, e.ROBSlot, m.Cfg.ROBSize)
		}
		if e.LSQSlot < -1 || e.LSQSlot >= m.Cfg.LSQSize {
			return fmt.Errorf("IQ slot %d targets LSQ slot %d of %d", i, e.LSQSlot, m.Cfg.LSQSize)
		}
		for s := 0; s < e.NumSrc; s++ {
			phys := m.Cfg.IntPhysRegs
			if e.SrcKind[s] == isa.KindFP {
				phys = m.Cfg.FPPhysRegs
			}
			if e.SrcPhys[s] < 0 || e.SrcPhys[s] >= phys {
				return fmt.Errorf("IQ slot %d source %d reads p%d of %d", i, s, e.SrcPhys[s], phys)
			}
		}
		if e.HasDest {
			phys := m.Cfg.IntPhysRegs
			if e.DestKind == isa.KindFP {
				phys = m.Cfg.FPPhysRegs
			}
			if e.DestPhys < 0 || e.DestPhys >= phys {
				return fmt.Errorf("IQ slot %d writes p%d of %d", i, e.DestPhys, phys)
			}
		}
	}
	return nil
}

// Normalized returns the configuration with derived defaults filled in, the
// form New applies before building a machine. Snapshot fingerprints hash the
// normalized form so that (say) an explicit MaxCycles equal to the default
// and an unset one fingerprint identically.
func (c Config) Normalized() Config { return c.normalized() }

// ErrStopped is returned by RunBreakable when the break callback asked to
// stop. The machine is intact and between cycles: it can be snapshotted and
// later resumed, or RunBreakable can simply be called again.
var ErrStopped = errors.New("pipeline: run stopped at break point")

// ErrCycleBudget wraps the error returned when MaxCycles is exhausted, so a
// caller replaying a budget-truncated run (the flight recorder) can tell the
// expected end-of-recording from a genuine failure. The machine is between
// cycles and fully inspectable.
var ErrCycleBudget = errors.New("cycle budget exhausted")

// RunBreakable executes like Run, additionally calling brk every `every`
// cycles (default 4096 when zero); when brk returns true the run stops with
// ErrStopped, leaving the machine between cycles. Watchdog and cycle-budget
// behaviour are identical to Run.
func (m *Machine) RunBreakable(every uint64, brk func() bool) error {
	if every == 0 {
		every = 4096
	}
	left := every
	for !m.halted {
		m.Step()
		if m.hookErr != nil {
			return m.hookErr
		}
		if m.cycle >= m.Cfg.MaxCycles {
			return fmt.Errorf("pipeline: cycle budget %d exhausted (%d committed; %s): %w",
				m.Cfg.MaxCycles, m.C.Commits, m.stateSummary(), ErrCycleBudget)
		}
		if m.cycle-m.lastCommit > m.Cfg.WatchdogCycles {
			return fmt.Errorf("pipeline: no commit for %d cycles at cycle %d (%s)",
				m.Cfg.WatchdogCycles, m.cycle, m.stateSummary())
		}
		if m.FF != nil {
			if err := m.FF.Tick(); err != nil {
				return err
			}
		}
		if brk != nil {
			if left--; left == 0 {
				left = every
				if brk() {
					return ErrStopped
				}
			}
		}
	}
	return m.hookErr
}

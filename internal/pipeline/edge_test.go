package pipeline

import (
	"strings"
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/isa"
	"reuseiq/internal/prog"
)

// Edge-case and failure-injection tests for the pipeline engine.

func TestColdCacheStallsThenRuns(t *testing.T) {
	p := asm.MustAssemble("li $r2, 1\nhalt")
	m := New(BaselineConfig(), p)
	// The very first fetch misses ITLB + L1I + L2 and goes to memory.
	for i := 0; i < 3 && !m.Halted(); i++ {
		m.Step()
	}
	if m.C.Commits != 0 {
		t.Fatal("committed before the cold miss resolved")
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Cold-start latency: ITLB(3) + L1(1) + L2(8) + memory(80 + 7*8).
	if m.C.Cycles < 140 {
		t.Errorf("completed in %d cycles; cold-miss latency unmodeled?", m.C.Cycles)
	}
	if m.Hier.L1I.Misses == 0 || m.Hier.L2.Misses == 0 {
		t.Error("no cache misses recorded")
	}
}

func TestPhysicalRegisterPressure(t *testing.T) {
	// A config with barely more physical than architectural registers
	// must still make forward progress (dispatch stalls, then commits
	// release registers).
	var b strings.Builder
	b.WriteString("\tli $r2, 0\n")
	for i := 0; i < 100; i++ {
		b.WriteString("\taddi $r2, $r2, 1\n")
	}
	b.WriteString("\thalt\n")
	p := asm.MustAssemble(b.String())
	cfg := BaselineConfig()
	cfg.IntPhysRegs = 36 // 32 arch + 4 in flight
	cfg.FPPhysRegs = 36
	m := runPipe(t, cfg, p)
	if m.ArchInt(2) != 100 {
		t.Errorf("r2 = %d", m.ArchInt(2))
	}
	if m.C.DispatchStallRegs == 0 {
		t.Error("no rename-register stalls under extreme pressure")
	}
}

func TestTinyROBAndLSQ(t *testing.T) {
	p := asm.MustAssemble(`
	.data
buf:	.space 64
	.text
	la  $r5, buf
	li  $r3, 8
l:	sw  $r3, 0($r5)
	lw  $r4, 0($r5)
	addi $r5, $r5, 4
	addi $r3, $r3, -1
	bne $r3, $zero, l
	halt
	`)
	cfg := BaselineConfig()
	cfg.IQSize = 4
	cfg.ROBSize = 4
	cfg.LSQSize = 2
	m := runPipe(t, cfg, p)
	if m.ArchInt(4) != 1 {
		t.Errorf("r4 = %d", m.ArchInt(4))
	}
	if m.C.DispatchStallROB == 0 && m.C.DispatchStallIQ == 0 && m.C.DispatchStallLSQ == 0 {
		t.Error("no structural stalls with 4-entry window")
	}
}

func TestDeepMispredictChains(t *testing.T) {
	// Data-dependent branches with effectively random directions force
	// constant recovery; results must stay exact.
	m := differential(t, `
	li   $r2, 0        # acc
	li   $r4, 12345    # lcg state
	li   $r3, 500
loop:	li   $r5, 1103515245
	mul  $r4, $r4, $r5
	addi $r4, $r4, 12345
	srl  $r6, $r4, 16
	andi $r6, $r6, 1
	beq  $r6, $zero, even
	addi $r2, $r2, 3
	j    next
even:	addi $r2, $r2, 5
next:	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
	if m.C.Mispredicts < 50 {
		t.Errorf("only %d mispredicts; branch pattern not hostile enough", m.C.Mispredicts)
	}
}

func TestJALRIndirectCalls(t *testing.T) {
	m := differential(t, `
main:	la   $r5, fn1
	li   $r3, 40
loop:	jalr $ra, $r5
	la   $r6, fn2
	and  $at, $r3, $r3    # keep $at defined
	andi $r7, $r3, 1
	beq  $r7, $zero, pick1
	move $r5, $r6
	j    go
pick1:	la   $r5, fn1
go:	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
fn1:	addi $r2, $r2, 1
	jr   $ra
fn2:	addi $r2, $r2, 100
	jr   $ra
	`)
	if m.ArchInt(2) == 0 {
		t.Error("indirect calls never executed")
	}
}

func TestFetchPastTextEndOnWrongPath(t *testing.T) {
	// A branch at the end of text predicted taken toward the last
	// instruction; wrong-path fetch runs off the end and must stall
	// harmlessly until recovery.
	m := differential(t, `
	li   $r3, 30
l:	addi $r3, $r3, -1
	bne  $r3, $zero, l
	halt
	`)
	_ = m
}

func TestStoreCommitWritesDCache(t *testing.T) {
	p := asm.MustAssemble(`
	.data
v:	.space 4
	.text
	la $r5, v
	li $r2, 7
	sw $r2, 0($r5)
	halt
	`)
	m := runPipe(t, BaselineConfig(), p)
	if m.C.StoreCommitAccesses != 1 {
		t.Errorf("store commit accesses = %d", m.C.StoreCommitAccesses)
	}
	if m.Mem.ReadI32(p.Symbols["v"]) != 7 {
		t.Error("store value lost")
	}
}

func TestWrongPathStoreNeverCommits(t *testing.T) {
	// The store sits on the not-taken path of a branch that is always
	// taken but predicted not-taken at first: speculative execution must
	// not let it reach memory.
	m := differential(t, `
	.data
guard:	.word 0
	.text
	la   $r5, guard
	li   $r2, 1
	li   $r3, 99
	bne  $r2, $zero, skip
	sw   $r3, 0($r5)     # wrong path only
skip:	lw   $r4, 0($r5)
	halt
	`)
	if m.ArchInt(4) != 0 {
		t.Fatalf("wrong-path store leaked: guard = %d", m.ArchInt(4))
	}
	if m.Mem.ReadI32(m.Prog.Symbols["guard"]) != 0 {
		t.Fatal("memory corrupted by wrong-path store")
	}
}

func TestGatedFractionNeverExceedsOne(t *testing.T) {
	p := asm.MustAssemble(`
	li $r3, 5000
l:	addi $r3, $r3, -1
	bne $r3, $zero, l
	halt
	`)
	m := runPipe(t, DefaultConfig(), p)
	if g := m.GatedFraction(); g < 0 || g > 1 {
		t.Errorf("gated fraction = %v", g)
	}
	if m.C.GatedCycles > m.C.Cycles {
		t.Error("gated cycles exceed total cycles")
	}
}

func TestCounterConsistency(t *testing.T) {
	p := asm.MustAssemble(`
	.data
a:	.space 400
	.text
	la   $r5, a
	li   $r3, 100
l:	sw   $r3, 0($r5)
	lw   $r4, 0($r5)
	addi $r5, $r5, 4
	addi $r3, $r3, -1
	bne  $r3, $zero, l
	halt
	`)
	m := runPipe(t, DefaultConfig(), p)
	// Commit counts must match between ROB and pipeline counters.
	if m.ROB.Commits != m.C.Commits {
		t.Errorf("ROB commits %d vs counter %d", m.ROB.Commits, m.C.Commits)
	}
	// Every committed load/store passed through the LSQ.
	if m.LSQ.Allocs < m.C.LoadsCommitted+m.C.StoresCommitted {
		t.Errorf("LSQ allocs %d < committed mem ops %d",
			m.LSQ.Allocs, m.C.LoadsCommitted+m.C.StoresCommitted)
	}
	// Front-end renames + reuse renames cover all commits.
	if m.C.FrontRenames+m.C.ReuseRenames < m.C.Commits {
		t.Errorf("renames %d+%d < commits %d", m.C.FrontRenames, m.C.ReuseRenames, m.C.Commits)
	}
}

func TestHaltAtEntry(t *testing.T) {
	p := asm.MustAssemble("halt")
	m := runPipe(t, DefaultConfig(), p)
	if m.C.Commits != 0 {
		t.Errorf("commits = %d for a lone halt", m.C.Commits)
	}
	if !m.Halted() {
		t.Error("not halted")
	}
}

func TestSPInitialized(t *testing.T) {
	p := asm.MustAssemble(`
	addi $sp, $sp, -4
	sw   $sp, 0($sp)
	lw   $r2, 0($sp)
	halt
	`)
	m := runPipe(t, BaselineConfig(), p)
	want := int32(prog.StackTop) - 4
	if m.ArchInt(isa.RegSP) != want || m.ArchInt(2) != want {
		t.Errorf("sp = %d r2 = %d, want %d", m.ArchInt(isa.RegSP), m.ArchInt(2), want)
	}
}

func TestHalfwordForwardingUnderReuse(t *testing.T) {
	m := differential(t, `
	.data
buf:	.space 8
	.text
	la   $r5, buf
	li   $r3, 400
	li   $r2, 0
l:	addi $r2, $r2, 3
	sh   $r2, 0($r5)
	lh   $r4, 0($r5)
	lhu  $r6, 0($r5)
	addi $r3, $r3, -1
	bne  $r3, $zero, l
	halt
	`)
	if m.ArchInt(4) != 1200 || m.ArchInt(6) != 1200 {
		t.Errorf("lh=%d lhu=%d", m.ArchInt(4), m.ArchInt(6))
	}
	if m.Ctl.S.Promotions == 0 {
		t.Error("halfword loop never promoted")
	}
}

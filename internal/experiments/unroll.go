package experiments

import (
	"fmt"
	"strings"

	"reuseiq/internal/compiler"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
	"reuseiq/internal/workloads"
)

// UnrollAblation (A3) contrasts the paper's *hardware* loop unrolling
// (multi-iteration buffering automatically unrolls the loop into the issue
// queue, §2.2.1) with *software* unrolling by the compiler: unrolled code
// enlarges the static loop body, so small-loop kernels can stop fitting the
// queue — the opposite of loop distribution. Measured at IQ=64 with the
// reuse mechanism on.
type UnrollAblation struct {
	Kernels                            []string
	Factor                             int
	GatedOriginal                      []float64
	GatedUnrolled                      []float64
	SaveOriginal                       []float64 // overall power saving vs matching baseline
	SaveUnrolled                       []float64
	AvgGatedOriginal, AvgGatedUnrolled float64
	AvgSaveOriginal, AvgSaveUnrolled   float64
}

// AblationUnroll runs the software-unrolling ablation.
func (s *Suite) AblationUnroll(factor int) (*UnrollAblation, error) {
	const iq = 64
	a := &UnrollAblation{Kernels: KernelNames(), Factor: factor}
	n := float64(len(a.Kernels))
	for _, kname := range a.Kernels {
		k, _ := workloads.ByName(kname)
		for _, unrolled := range []bool{false, true} {
			ir := k.Prog
			if unrolled {
				ir = compiler.Unroll(ir, factor)
			}
			mp, _, err := compiler.Compile(ir)
			if err != nil {
				return nil, fmt.Errorf("experiments: unroll %s: %w", kname, err)
			}
			base := pipeline.New(pipeline.BaselineConfig().WithIQSize(iq), mp)
			if err := base.Run(); err != nil {
				return nil, err
			}
			reuse := pipeline.New(pipeline.DefaultConfig().WithIQSize(iq), mp)
			if err := reuse.Run(); err != nil {
				return nil, err
			}
			save := power.Compare(power.Analyze(base), power.Analyze(reuse)).Overall
			if unrolled {
				a.GatedUnrolled = append(a.GatedUnrolled, reuse.GatedFraction())
				a.SaveUnrolled = append(a.SaveUnrolled, save)
				a.AvgGatedUnrolled += reuse.GatedFraction() / n
				a.AvgSaveUnrolled += save / n
			} else {
				a.GatedOriginal = append(a.GatedOriginal, reuse.GatedFraction())
				a.SaveOriginal = append(a.SaveOriginal, save)
				a.AvgGatedOriginal += reuse.GatedFraction() / n
				a.AvgSaveOriginal += save / n
			}
		}
	}
	return a, nil
}

func (a *UnrollAblation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A3: software unrolling x%d vs hardware unrolling (IQ=64)\n", a.Factor)
	fmt.Fprintf(&b, "  %-8s  %11s  %11s  %10s  %10s\n", "",
		"gated orig", fmt.Sprintf("gated x%d", a.Factor),
		"save orig", fmt.Sprintf("save x%d", a.Factor))
	for i, k := range a.Kernels {
		fmt.Fprintf(&b, "  %-8s  %10.1f%%  %10.1f%%  %9.1f%%  %9.1f%%\n",
			k, 100*a.GatedOriginal[i], 100*a.GatedUnrolled[i],
			100*a.SaveOriginal[i], 100*a.SaveUnrolled[i])
	}
	fmt.Fprintf(&b, "  %-8s  %10.1f%%  %10.1f%%  %9.1f%%  %9.1f%%\n", "average",
		100*a.AvgGatedOriginal, 100*a.AvgGatedUnrolled,
		100*a.AvgSaveOriginal, 100*a.AvgSaveUnrolled)
	return b.String()
}

// NBLTSizeSweep measures how the revoke rate and gated fraction move as the
// non-bufferable loop table grows from 0 to 16 entries (the paper fixes 8;
// this shows the knee). Averaged over all kernels at IQ=64.
type NBLTSizeSweep struct {
	Sizes      []int
	RevokeRate []float64
	Gated      []float64
}

// SweepNBLTSizes runs the NBLT size sweep.
func (s *Suite) SweepNBLTSizes(sizes []int) (*NBLTSizeSweep, error) {
	const iq = 64
	sw := &NBLTSizeSweep{Sizes: sizes}
	names := KernelNames()
	n := float64(len(names))
	for _, nblt := range sizes {
		var rate, gated float64
		for _, k := range names {
			r, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: nblt})
			if err != nil {
				return nil, err
			}
			if r.Core.Bufferings > 0 {
				rate += float64(r.Core.Revokes) / float64(r.Core.Bufferings) / n
			}
			gated += r.Gated / n
		}
		sw.RevokeRate = append(sw.RevokeRate, rate)
		sw.Gated = append(sw.Gated, gated)
	}
	return sw, nil
}

func (sw *NBLTSizeSweep) String() string {
	var b strings.Builder
	b.WriteString("NBLT size sweep (IQ=64, averages over benchmarks)\n")
	fmt.Fprintf(&b, "  %-8s", "entries")
	for _, s := range sw.Sizes {
		fmt.Fprintf(&b, "  %6d", s)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  %-8s", "revoke")
	for _, v := range sw.RevokeRate {
		fmt.Fprintf(&b, "  %5.1f%%", 100*v)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  %-8s", "gated")
	for _, v := range sw.Gated {
		fmt.Fprintf(&b, "  %5.1f%%", 100*v)
	}
	b.WriteString("\n")
	return b.String()
}

package experiments

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"
)

func TestFig5CSV(t *testing.T) {
	f := &Fig5{
		Sizes:   []int{32, 64},
		Kernels: []string{"a", "b"},
		Gated:   map[string][]float64{"a": {0.1, 0.2}, "b": {0.3, 0.4}},
		Average: []float64{0.2, 0.3},
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "kernel,iq32,iq64\na,0.1,0.2\nb,0.3,0.4\naverage,0.2,0.3\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

func TestFig6CSV(t *testing.T) {
	f := &Fig6{
		Sizes:  []int{32},
		ICache: []float64{0.5}, BPred: []float64{0.25},
		IssueQ: []float64{0.125}, Overhead: []float64{0.01},
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, row := range []string{"component,iq32", "icache,0.5", "bpred,0.25", "issueq,0.125", "overhead,0.01"} {
		if !strings.Contains(got, row) {
			t.Errorf("csv missing %q:\n%s", row, got)
		}
	}
}

func TestFig9CSV(t *testing.T) {
	f := &Fig9{
		Kernels:  []string{"x"},
		Original: []float64{0.1}, Optimized: []float64{0.2},
		AvgOriginal: 0.1, AvgOptimized: 0.2,
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "kernel,original,optimized\nx,0.1,0.2\naverage,0.1,0.2\n" {
		t.Errorf("csv = %q", b.String())
	}
}

func TestFig78CSVShape(t *testing.T) {
	f7 := &Fig7{Sizes: []int{64}, Kernels: []string{"k"},
		Overall: map[string][]float64{"k": {0.12}}, Average: []float64{0.12}}
	var b strings.Builder
	if err := f7.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "kernel,iq64\n") {
		t.Errorf("fig7 header wrong: %q", b.String())
	}
	f8 := &Fig8{Sizes: []int{64}, Kernels: []string{"k"},
		Degradation: map[string][]float64{"k": {0.01}}, Average: []float64{0.01}}
	b.Reset()
	if err := f8.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "k,0.01") {
		t.Errorf("fig8 csv wrong: %q", b.String())
	}
}

// A failed (NaN) cell must render as "fail", matching the text report, and
// the file must still parse as CSV.
func TestCSVFailedCells(t *testing.T) {
	f := &Fig5{
		Sizes:   []int{32, 64},
		Kernels: []string{"a"},
		Gated:   map[string][]float64{"a": {math.NaN(), 0.5}},
		Average: []float64{math.NaN(), 0.5},
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, "a,fail,0.5") {
		t.Errorf("failed cell not rendered as fail:\n%s", got)
	}
	if strings.Contains(got, "NaN") {
		t.Errorf("raw NaN leaked into CSV:\n%s", got)
	}
	rows, err := csv.NewReader(strings.NewReader(got)).ReadAll()
	if err != nil {
		t.Fatalf("CSV with fail cells does not parse: %v", err)
	}
	if rows[1][1] != "fail" || rows[1][2] != "0.5" {
		t.Errorf("parsed row = %v", rows[1])
	}
}

// Kernel names containing separators, quotes and spaces must round-trip
// losslessly through encoding/csv (RFC 4180 quoting).
func TestCSVQuotingRoundTrip(t *testing.T) {
	names := []string{`plain`, `comma,name`, `quo"te`, `both",crazy"`, `spaced name`}
	f := &Fig9{
		Kernels:   names,
		Original:  []float64{0.1, 0.2, 0.3, 0.4, 0.5},
		Optimized: []float64{0.5, 0.4, 0.3, 0.2, 0.1},
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("quoted CSV does not parse: %v", err)
	}
	if len(rows) != len(names)+2 { // header + kernels + average
		t.Fatalf("parsed %d rows, want %d", len(rows), len(names)+2)
	}
	for i, want := range names {
		if got := rows[i+1][0]; got != want {
			t.Errorf("kernel %d round-tripped to %q, want %q", i, got, want)
		}
	}
}

// quoteCell itself: the quoting boundary cases.
func TestQuoteCell(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		"with,comma": `"with,comma"`,
		`has"quote`:  `"has""quote"`,
		"new\nline":  "\"new\nline\"",
		"":           "",
	}
	for in, want := range cases {
		if got := quoteCell(in); got != want {
			t.Errorf("quoteCell(%q) = %q, want %q", in, got, want)
		}
	}
}

package experiments

import (
	"strings"
	"testing"
)

func TestFig5CSV(t *testing.T) {
	f := &Fig5{
		Sizes:   []int{32, 64},
		Kernels: []string{"a", "b"},
		Gated:   map[string][]float64{"a": {0.1, 0.2}, "b": {0.3, 0.4}},
		Average: []float64{0.2, 0.3},
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "kernel,iq32,iq64\na,0.1,0.2\nb,0.3,0.4\naverage,0.2,0.3\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

func TestFig6CSV(t *testing.T) {
	f := &Fig6{
		Sizes:  []int{32},
		ICache: []float64{0.5}, BPred: []float64{0.25},
		IssueQ: []float64{0.125}, Overhead: []float64{0.01},
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, row := range []string{"component,iq32", "icache,0.5", "bpred,0.25", "issueq,0.125", "overhead,0.01"} {
		if !strings.Contains(got, row) {
			t.Errorf("csv missing %q:\n%s", row, got)
		}
	}
}

func TestFig9CSV(t *testing.T) {
	f := &Fig9{
		Kernels:  []string{"x"},
		Original: []float64{0.1}, Optimized: []float64{0.2},
		AvgOriginal: 0.1, AvgOptimized: 0.2,
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "kernel,original,optimized\nx,0.1,0.2\naverage,0.1,0.2\n" {
		t.Errorf("csv = %q", b.String())
	}
}

func TestFig78CSVShape(t *testing.T) {
	f7 := &Fig7{Sizes: []int{64}, Kernels: []string{"k"},
		Overall: map[string][]float64{"k": {0.12}}, Average: []float64{0.12}}
	var b strings.Builder
	if err := f7.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "kernel,iq64\n") {
		t.Errorf("fig7 header wrong: %q", b.String())
	}
	f8 := &Fig8{Sizes: []int{64}, Kernels: []string{"k"},
		Degradation: map[string][]float64{"k": {0.01}}, Average: []float64{0.01}}
	b.Reset()
	if err := f8.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "k,0.01") {
		t.Errorf("fig8 csv wrong: %q", b.String())
	}
}

// Crash-resumable sweeps: a write-ahead journal of completed cells plus
// periodic machine checkpoints for cells in flight.
//
// The journal is a JSONL file: one self-contained record per completed
// simulation, appended and fsynced the moment the cell finishes, so a sweep
// killed at any instant loses at most the work since the last checkpoint of
// the running cells. Alongside it, <path>.csv receives one flat CSV row per
// cell with the same durability, and <path>.ckpt/ holds mid-cell machine
// snapshots (written atomically via tmp+rename) for cells that outlive the
// checkpoint interval.
//
// Resume replays the journal — tolerating a torn final line, which is
// truncated away — seeds the suite's result cache so finished cells are
// never re-simulated (and never double-counted: the cache, not the log, is
// authoritative), and restores in-flight cells from their checkpoints. A
// checkpoint that fails to decode, fails its fingerprint check, or was taken
// under a different configuration is deleted and the cell re-runs from
// scratch; resumption degrades, it never aborts.
package experiments

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"reuseiq/internal/core"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
	"reuseiq/internal/prog"
	"reuseiq/internal/snapshot"
)

// DefaultCheckpointEvery is the default mid-cell checkpoint interval in
// simulated cycles. Snapshotting costs well under a millisecond, so this
// keeps overhead far below a percent while bounding lost work.
const DefaultCheckpointEvery = 2_000_000

// journalVersion guards the record schema.
const journalVersion = 1

// cellRecord is one journal line: the full run key plus the result.
type cellRecord struct {
	V        int           `json:"v"`
	Kernel   string        `json:"kernel"`
	IQ       int           `json:"iq"`
	Reuse    bool          `json:"reuse"`
	Dist     bool          `json:"dist"`
	Strategy core.Strategy `json:"strategy"`
	NBLT     int           `json:"nblt"`

	Cycles  uint64       `json:"cycles"`
	Commits uint64       `json:"commits"`
	IPC     float64      `json:"ipc"`
	Gated   float64      `json:"gated"`
	Power   power.Report `json:"power"`
	Core    core.Stats   `json:"core"`
	Err     string       `json:"err,omitempty"`
	Retried bool         `json:"retried,omitempty"`
}

func recordOf(k runKey, r RunResult) cellRecord {
	rec := cellRecord{
		V:      journalVersion,
		Kernel: k.kernel, IQ: k.iq, Reuse: k.reuse, Dist: k.dist,
		Strategy: k.strategy, NBLT: k.nblt,
		Cycles: r.Cycles, Commits: r.Commits, IPC: r.IPC, Gated: r.Gated,
		Power: r.Power, Core: r.Core, Retried: r.Retried,
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
	}
	return rec
}

func (rec cellRecord) key() runKey {
	return runKey{rec.Kernel, rec.IQ, rec.Reuse, rec.Dist, rec.Strategy, rec.NBLT}
}

func (rec cellRecord) result() RunResult {
	r := RunResult{
		Kernel: rec.Kernel, IQSize: rec.IQ, Reuse: rec.Reuse, Distributed: rec.Dist,
		Cycles: rec.Cycles, Commits: rec.Commits, IPC: rec.IPC, Gated: rec.Gated,
		Power: rec.Power, Core: rec.Core, Retried: rec.Retried,
	}
	if rec.Err != "" {
		r.Err = errors.New(rec.Err)
	}
	return r
}

// Journal persists sweep progress. Attach one to a Suite with AttachJournal.
type Journal struct {
	mu   sync.Mutex
	f    *os.File // JSONL of completed cells, fsynced per record
	csv  *os.File // flat per-cell CSV mirror, flushed per row
	dir  string   // checkpoint directory
	path string

	// CheckpointEvery is the mid-cell checkpoint interval in simulated
	// cycles (DefaultCheckpointEvery when zero). Set it before the sweep
	// starts.
	CheckpointEvery uint64
}

// Path returns the journal file's path.
func (j *Journal) Path() string { return j.path }

func (j *Journal) interval() uint64 {
	if j.CheckpointEvery > 0 {
		return j.CheckpointEvery
	}
	return DefaultCheckpointEvery
}

// openJournal opens the journal at path, creating it (plus <path>.csv and
// the <path>.ckpt/ directory) as needed, and replays any existing records.
func openJournal(path string, resume bool) (*Journal, []cellRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: journal: %w", err)
	}
	j := &Journal{f: f, path: path, dir: path + ".ckpt"}

	recs, good, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if len(recs) > 0 && !resume {
		f.Close()
		return nil, nil, fmt.Errorf("experiments: journal %s already holds %d cells; resume it or remove it", path, len(recs))
	}
	// Drop a torn trailing line so future appends produce a well-formed log.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("experiments: journal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("experiments: journal: %w", err)
	}
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("experiments: journal: %w", err)
	}
	csvPath := path + ".csv"
	writeHeader := true
	if st, err := os.Stat(csvPath); err == nil && st.Size() > 0 {
		writeHeader = false
	}
	j.csv, err = os.OpenFile(csvPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("experiments: journal: %w", err)
	}
	if writeHeader {
		fmt.Fprintln(j.csv, "kernel,iq,reuse,dist,strategy,nblt,cycles,commits,ipc,gated,energy_total,retried,status")
	}

	for _, rec := range recs {
		// The cell is durably recorded; its mid-run checkpoint is stale.
		os.Remove(j.ckptPath(rec.key()))
	}
	return j, recs, nil
}

// replay decodes every complete record in f and returns them together with
// the byte offset just past the last good line. Records with a future schema
// version fail loudly (silently dropping cells would re-run and then
// double-append them); a torn or corrupt final line just ends the replay.
func replay(f *os.File) ([]cellRecord, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("experiments: journal: %w", err)
	}
	var recs []cellRecord
	var good int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var rec cellRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn/corrupt tail: everything before it stands
		}
		if rec.V != journalVersion {
			return nil, 0, fmt.Errorf("experiments: journal: record version %d, this build reads %d", rec.V, journalVersion)
		}
		good += int64(len(line)) + 1
		recs = append(recs, rec)
	}
	return recs, good, nil
}

// Close closes the journal's files. Checkpoints need no closing: each is
// written and renamed whole.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.f.Close()
	if e := j.csv.Close(); err == nil {
		err = e
	}
	return err
}

// record appends the cell to the journal and its CSV mirror, fsyncs the
// journal, and removes the cell's now-stale checkpoint.
func (j *Journal) record(k runKey, r RunResult) error {
	data, err := json.Marshal(recordOf(k, r))
	if err != nil {
		return fmt.Errorf("experiments: journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("experiments: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("experiments: journal: %w", err)
	}
	status := "ok"
	if r.Err != nil {
		status = "fail"
	}
	fmt.Fprintf(j.csv, "%s,%d,%v,%v,%d,%d,%d,%d,%g,%g,%g,%v,%s\n",
		k.kernel, k.iq, k.reuse, k.dist, k.strategy, k.nblt,
		r.Cycles, r.Commits, r.IPC, r.Gated, r.Power.Total(), r.Retried, status)
	j.csv.Sync()
	os.Remove(j.ckptPath(k))
	return nil
}

// ckptPath names the cell's checkpoint file.
func (j *Journal) ckptPath(k runKey) string {
	return filepath.Join(j.dir, fmt.Sprintf("%s_iq%d_r%v_d%v_s%d_n%d.ckpt",
		sanitize(k.kernel), k.iq, k.reuse, k.dist, k.strategy, k.nblt))
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}

// checkpoint atomically writes the machine's state to the cell's checkpoint
// file (tmp + fsync + rename). Failures must not stop the simulation — a
// missing checkpoint only costs re-simulation after a crash — so callers
// ignore the error or report it at most once and keep running.
func (j *Journal) checkpoint(k runKey, m *pipeline.Machine) error {
	tmp, err := os.CreateTemp(j.dir, "ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	if err := snapshot.Save(w, m); err != nil {
		tmp.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), j.ckptPath(k))
}

// tryResume restores the cell's checkpoint into a machine, or returns nil if
// there is none or it is unusable (corrupt, truncated, or taken under a
// different configuration — e.g. by a sabotaged or retried earlier attempt).
// Unusable checkpoints are deleted so they are not retried forever.
func (j *Journal) tryResume(k runKey, cfg pipeline.Config, p *prog.Program) *pipeline.Machine {
	path := j.ckptPath(k)
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	m, err := snapshot.Restore(bufio.NewReader(f), cfg, p)
	if err != nil {
		os.Remove(path)
		return nil
	}
	return m
}

// AttachJournal opens (creating if needed) the journal at path and attaches
// it to the suite: recorded cells seed the result cache so they never
// re-simulate, every newly completed cell is appended and fsynced, and
// long-running cells checkpoint every CheckpointEvery cycles so a killed
// sweep resumes mid-cell. With resume false the journal must be empty; with
// resume true existing records are replayed (a torn final line is tolerated
// and truncated away). Returns the journal and the number of cells
// recovered.
func (s *Suite) AttachJournal(path string, resume bool) (*Journal, int, error) {
	j, recs, err := openJournal(path, resume)
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	for _, rec := range recs {
		s.results[rec.key()] = rec.result()
	}
	s.journal = j
	s.mu.Unlock()
	return j, len(recs), nil
}

package experiments

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reuseiq/internal/core"
	"reuseiq/internal/flightrec"
	"reuseiq/internal/runstore"
	"reuseiq/internal/telemetry"
)

func TestTablesRender(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"64 entries", "bimod, 2048", "32KB, 2 way", "4 IALU, 1 IMULT"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2()
	for _, k := range KernelNames() {
		if !strings.Contains(t2, k) {
			t.Errorf("Table 2 missing %s", k)
		}
	}
}

func TestKernelNames(t *testing.T) {
	names := KernelNames()
	if len(names) != 8 || names[0] != "adi" || names[7] != "wss" {
		t.Errorf("names = %v", names)
	}
}

func TestRunCachesResults(t *testing.T) {
	s := NewSuite()
	sp := Spec{Kernel: "tsf", IQSize: 32, Reuse: true, NBLTSize: -1}
	r1, err := s.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Cycles == 0 {
		t.Error("cached run differs or empty")
	}
	if len(s.results) != 1 {
		t.Errorf("cache holds %d entries, want 1", len(s.results))
	}
}

func TestRunUnknownKernel(t *testing.T) {
	s := NewSuite()
	if _, err := s.Run(Spec{Kernel: "nope", IQSize: 64}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestDistributedRunsDiffer(t *testing.T) {
	s := NewSuite()
	orig, err := s.Run(Spec{Kernel: "btrix", IQSize: 64, Reuse: true, NBLTSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := s.Run(Spec{Kernel: "btrix", IQSize: 64, Reuse: true, Distributed: true, NBLTSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	// btrix's ~90-instruction body cannot gate at IQ=64; after
	// distribution its split loops can.
	if dist.Gated <= orig.Gated {
		t.Errorf("distribution did not raise gating: %.2f -> %.2f", orig.Gated, dist.Gated)
	}
}

// One small end-to-end figure on a reduced size set, exercising the whole
// harness path without the full sweep cost.
func TestFigure5SmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations")
	}
	s := NewSuite()
	f, err := s.Figure5([]int{32})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Kernels) != 8 || len(f.Average) != 1 {
		t.Fatalf("shape: %d kernels, %d averages", len(f.Kernels), len(f.Average))
	}
	// The paper's claim: small-loop kernels gate heavily even at IQ=32.
	for _, k := range []string{"aps", "tsf", "wss"} {
		if f.Gated[k][0] < 0.5 {
			t.Errorf("%s gated only %.1f%% at IQ=32", k, 100*f.Gated[k][0])
		}
	}
	// Large-loop kernels barely gate at IQ=32.
	for _, k := range []string{"btrix", "tomcat", "vpenta"} {
		if f.Gated[k][0] > 0.3 {
			t.Errorf("%s gated %.1f%% at IQ=32, expected little", k, 100*f.Gated[k][0])
		}
	}
	out := f.String()
	if !strings.Contains(out, "average") {
		t.Error("rendering lacks average row")
	}
}

func TestStrategySpecsDistinct(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations")
	}
	s := NewSuite()
	multi, err := s.Run(Spec{Kernel: "tsf", IQSize: 64, Reuse: true, Strategy: core.StrategyMulti, NBLTSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	single, err := s.Run(Spec{Kernel: "tsf", IQSize: 64, Reuse: true, Strategy: core.StrategySingle, NBLTSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Core.IterationsBuffered <= single.Core.IterationsBuffered {
		t.Error("strategies not distinguished in cache key or controller")
	}
}

// TestSabotagedSweepCompletes forces one cell of the Figure 5 sweep to fail
// and requires the figure to complete anyway: the cell renders as "fail",
// valid cells keep real data, and the averages skip the failed kernel.
func TestSabotagedSweepCompletes(t *testing.T) {
	s := NewSuite()
	s.Sabotage = func(sp Spec) bool {
		return sp.Kernel == "adi" && sp.IQSize == 64 && sp.Reuse
	}
	sizes := []int{32, 64}
	f, err := s.Figure5(sizes)
	if err != nil {
		t.Fatalf("sabotaged sweep aborted: %v", err)
	}
	row := f.Gated["adi"]
	if !math.IsNaN(row[1]) {
		t.Errorf("sabotaged cell = %v, want NaN", row[1])
	}
	if math.IsNaN(row[0]) {
		t.Error("healthy cell of the sabotaged kernel went NaN")
	}
	if math.IsNaN(f.Average[1]) || f.Average[1] <= 0 {
		t.Errorf("average over surviving kernels = %v", f.Average[1])
	}
	out := f.String()
	if !strings.Contains(out, "fail") {
		t.Errorf("rendered figure does not mark the failed cell:\n%s", out)
	}

	// The failed run is cached as a degraded partial, not an error.
	r, err := s.Run(Spec{Kernel: "adi", IQSize: 64, Reuse: true, NBLTSize: -1})
	if err != nil {
		t.Fatalf("degraded cell returned error: %v", err)
	}
	if !r.Failed() || !r.Retried {
		t.Errorf("degraded cell: Err=%v Retried=%v", r.Err, r.Retried)
	}
	if r.Cycles == 0 {
		t.Error("degraded cell carries no partial statistics")
	}
}

// TestFigure7SkipsFailedCells checks the comparison figures, which need both
// the baseline and reuse runs of a cell, under sabotage of only the baseline.
func TestFigure7SkipsFailedCells(t *testing.T) {
	s := NewSuite()
	s.Sabotage = func(sp Spec) bool {
		return sp.Kernel == "aps" && sp.IQSize == 32 && !sp.Reuse
	}
	f, err := s.Figure7([]int{32})
	if err != nil {
		t.Fatalf("sabotaged comparison aborted: %v", err)
	}
	if !math.IsNaN(f.Overall["aps"][0]) {
		t.Errorf("aps cell = %v, want NaN", f.Overall["aps"][0])
	}
	if math.IsNaN(f.Average[0]) {
		t.Error("average went NaN despite surviving kernels")
	}
}

// TestPrewarmJoinsErrors requires Prewarm to report every setup failure, not
// only the first.
func TestPrewarmJoinsErrors(t *testing.T) {
	s := NewSuite()
	err := s.Prewarm([]Spec{
		{Kernel: "no-such-kernel-a", IQSize: 64},
		{Kernel: "adi", IQSize: 32, NBLTSize: -1},
		{Kernel: "no-such-kernel-b", IQSize: 64},
	})
	if err == nil {
		t.Fatal("Prewarm swallowed setup errors")
	}
	msg := err.Error()
	for _, want := range []string{"no-such-kernel-a", "no-such-kernel-b"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error missing %q: %v", want, msg)
		}
	}
}

// TestPrewarmProgress requires the Progress callback to fire once per spec
// with a monotonically increasing done count reaching the total.
func TestPrewarmProgress(t *testing.T) {
	s := NewSuite()
	s.Parallelism = 4
	var calls []int
	var kernels []string
	s.Progress = func(done, total int, sp Spec, r RunResult) {
		if total != 3 {
			t.Errorf("total = %d, want 3", total)
		}
		calls = append(calls, done)
		kernels = append(kernels, sp.Kernel)
	}
	err := s.Prewarm([]Spec{
		{Kernel: "aps", IQSize: 32, NBLTSize: -1},
		{Kernel: "aps", IQSize: 32, Reuse: true, NBLTSize: -1},
		{Kernel: "aps", IQSize: 64, Reuse: true, NBLTSize: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 3 {
		t.Fatalf("Progress fired %d times, want 3", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Errorf("call %d reported done=%d, want %d (serialized, increasing)", i, d, i+1)
		}
	}
	for _, k := range kernels {
		if k != "aps" {
			t.Errorf("Progress reported kernel %q", k)
		}
	}
}

// Sweep-progress metrics: after a Prewarm, done == total, the cycle counter
// matches TotalCycles, no workers remain busy, and a sabotaged cell counts
// as failed.
func TestSweepMetricsTrackPrewarm(t *testing.T) {
	s := NewSuite()
	s.Parallelism = 2
	s.Sabotage = func(sp Spec) bool { return sp.IQSize == 16 }
	specs := []Spec{
		{Kernel: "adi", IQSize: 32, Reuse: true, NBLTSize: -1},
		{Kernel: "adi", IQSize: 32, Reuse: false, NBLTSize: -1},
		{Kernel: "aps", IQSize: 16, Reuse: true, NBLTSize: -1},
	}
	if err := s.Prewarm(specs); err != nil {
		t.Fatal(err)
	}
	st := s.Sweep()
	if st.Total != 3 || st.Done != 3 {
		t.Errorf("sweep state %+v, want total=done=3", st)
	}
	if st.Failed != 1 {
		t.Errorf("failed = %d, want 1 (sabotaged cell)", st.Failed)
	}
	if st.WorkersBusy != 0 || len(st.Running) != 0 {
		t.Errorf("workers still marked busy after Prewarm: %+v", st)
	}
	if st.Cycles == 0 || st.Cycles != s.TotalCycles() {
		t.Errorf("cycles = %d, TotalCycles = %d", st.Cycles, s.TotalCycles())
	}

	r := &telemetry.Registry{}
	s.RegisterMetrics(r)
	set := r.Snapshot()
	if got := set.Get("sweep.specs_done"); got != 3 {
		t.Errorf("sweep.specs_done = %d, want 3", got)
	}
	if got := set.Get("sweep.specs_failed"); got != 1 {
		t.Errorf("sweep.specs_failed = %d, want 1", got)
	}
	if got := set.Get("sweep.cycles_simulated"); got != st.Cycles {
		t.Errorf("sweep.cycles_simulated = %d, want %d", got, st.Cycles)
	}
}

func TestSpecLabel(t *testing.T) {
	if got := specLabel(Spec{Kernel: "adi", IQSize: 64, Reuse: true, Distributed: true}); got != "adi iq=64 reuse dist" {
		t.Errorf("specLabel = %q", got)
	}
	if got := specLabel(Spec{Kernel: "wss", IQSize: 32}); got != "wss iq=32" {
		t.Errorf("specLabel = %q", got)
	}
}

// TestFlightRecPostMortem: with FlightRecDir set, a sabotaged cell leaves a
// loadable post-mortem recording and reports its directory, while a healthy
// cell cleans its recording up.
func TestFlightRecPostMortem(t *testing.T) {
	dir := t.TempDir()
	s := NewSuite()
	s.FlightRecDir = dir
	s.Sabotage = func(sp Spec) bool { return sp.Reuse }

	failed, err := s.Run(Spec{Kernel: "aps", IQSize: 32, Reuse: true})
	if err != nil {
		t.Fatalf("sabotaged cell returned setup error: %v", err)
	}
	if !failed.Failed() {
		t.Fatal("sabotaged cell did not fail")
	}
	if failed.FlightRec == "" {
		t.Fatal("failed cell left no post-mortem recording directory")
	}
	a, err := flightrec.Load(failed.FlightRec)
	if err != nil {
		t.Fatalf("post-mortem recording does not load: %v", err)
	}
	sess := flightrec.NewSession(a)
	defer sess.Close()
	if err := sess.Seek(a.End); err != nil {
		t.Fatalf("post-mortem recording does not seek to its end: %v", err)
	}
	if sess.Cycle() != a.End {
		t.Errorf("seek landed at cycle %d, want %d", sess.Cycle(), a.End)
	}

	healthy, err := s.Run(Spec{Kernel: "aps", IQSize: 32, Reuse: false})
	if err != nil {
		t.Fatalf("healthy cell: %v", err)
	}
	if healthy.Failed() {
		t.Fatalf("healthy cell failed: %v", healthy.Err)
	}
	if healthy.FlightRec != "" {
		t.Errorf("healthy cell reports a recording: %s", healthy.FlightRec)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), "reusefalse") {
			t.Errorf("healthy cell's recording %s was not deleted", e.Name())
		}
	}
}

// TestLedgerRecordsCellsAndStaysInert is the ledger acceptance test for
// sweeps: with a ledger attached, every simulated cell lands in the ledger
// with its provenance stamp and the Progress-visible RunID, cached cells are
// not re-recorded, and the rendered figure is byte-identical to a
// ledger-free suite — recording must never perturb the modeled results.
func TestLedgerRecordsCellsAndStaysInert(t *testing.T) {
	sizes := []int{32}
	bare := NewSuite()
	fBare, err := bare.Figure5(sizes)
	if err != nil {
		t.Fatal(err)
	}

	s := NewSuite()
	led, err := s.AttachLedger(filepath.Join(t.TempDir(), "runs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	var progressIDs []string
	s.Progress = func(done, total int, sp Spec, r RunResult) {
		if r.RunID != "" {
			progressIDs = append(progressIDs, r.RunID)
		}
	}
	fLed, err := s.Figure5(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if fBare.String() != fLed.String() {
		t.Errorf("figure 5 differs with a ledger attached:\n--- bare ---\n%s\n--- ledger ---\n%s", fBare, fLed)
	}

	recs := led.Records()
	if len(recs) == 0 {
		t.Fatal("no cells recorded")
	}
	byID := map[string]bool{}
	for _, r := range recs {
		byID[r.ID] = true
		if r.Kind != runstore.KindCell {
			t.Errorf("record %s kind %q, want cell", r.ID, r.Kind)
		}
		if r.Kernel == "" || r.Fingerprint == "" || len(r.Metrics.Counters) == 0 {
			t.Errorf("record %s missing provenance: kernel=%q fp=%q counters=%d",
				r.ID, r.Kernel, r.Fingerprint, len(r.Metrics.Counters))
		}
	}
	if len(progressIDs) != len(recs) {
		t.Errorf("Progress reported %d run ids, ledger holds %d records", len(progressIDs), len(recs))
	}
	for _, id := range progressIDs {
		if !byID[id] {
			t.Errorf("Progress reported run id %s not present in the ledger", id)
		}
	}

	// Cached re-render: no new records, and the cached result still points
	// at the ledger record of its original simulation.
	n := led.Len()
	r, err := s.Run(Spec{Kernel: "aps", IQSize: 32, Reuse: true, NBLTSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !byID[r.RunID] {
		t.Errorf("cached cell RunID %q does not match a ledger record", r.RunID)
	}
	if led.Len() != n {
		t.Errorf("cached cell re-recorded: ledger grew %d -> %d", n, led.Len())
	}

	// Fingerprint-identical repeats across suites must satisfy the sentinel:
	// a second suite over the same specs doubles every group cleanly.
	s2 := NewSuite()
	led2, err := s2.AttachLedger(led.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	if _, err := s2.Figure5(sizes); err != nil {
		t.Fatal(err)
	}
	rep := runstore.Sentinel(led2.Records())
	if !rep.Pass() {
		var b strings.Builder
		_ = rep.WriteText(&b)
		t.Errorf("sentinel fails across two identical sweeps:\n%s", b.String())
	}
}

package experiments

import (
	"strings"
	"testing"

	"reuseiq/internal/core"
)

func TestTablesRender(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"64 entries", "bimod, 2048", "32KB, 2 way", "4 IALU, 1 IMULT"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2()
	for _, k := range KernelNames() {
		if !strings.Contains(t2, k) {
			t.Errorf("Table 2 missing %s", k)
		}
	}
}

func TestKernelNames(t *testing.T) {
	names := KernelNames()
	if len(names) != 8 || names[0] != "adi" || names[7] != "wss" {
		t.Errorf("names = %v", names)
	}
}

func TestRunCachesResults(t *testing.T) {
	s := NewSuite()
	sp := Spec{Kernel: "tsf", IQSize: 32, Reuse: true, NBLTSize: -1}
	r1, err := s.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Cycles == 0 {
		t.Error("cached run differs or empty")
	}
	if len(s.results) != 1 {
		t.Errorf("cache holds %d entries, want 1", len(s.results))
	}
}

func TestRunUnknownKernel(t *testing.T) {
	s := NewSuite()
	if _, err := s.Run(Spec{Kernel: "nope", IQSize: 64}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestDistributedRunsDiffer(t *testing.T) {
	s := NewSuite()
	orig, err := s.Run(Spec{Kernel: "btrix", IQSize: 64, Reuse: true, NBLTSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := s.Run(Spec{Kernel: "btrix", IQSize: 64, Reuse: true, Distributed: true, NBLTSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	// btrix's ~90-instruction body cannot gate at IQ=64; after
	// distribution its split loops can.
	if dist.Gated <= orig.Gated {
		t.Errorf("distribution did not raise gating: %.2f -> %.2f", orig.Gated, dist.Gated)
	}
}

// One small end-to-end figure on a reduced size set, exercising the whole
// harness path without the full sweep cost.
func TestFigure5SmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations")
	}
	s := NewSuite()
	f, err := s.Figure5([]int{32})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Kernels) != 8 || len(f.Average) != 1 {
		t.Fatalf("shape: %d kernels, %d averages", len(f.Kernels), len(f.Average))
	}
	// The paper's claim: small-loop kernels gate heavily even at IQ=32.
	for _, k := range []string{"aps", "tsf", "wss"} {
		if f.Gated[k][0] < 0.5 {
			t.Errorf("%s gated only %.1f%% at IQ=32", k, 100*f.Gated[k][0])
		}
	}
	// Large-loop kernels barely gate at IQ=32.
	for _, k := range []string{"btrix", "tomcat", "vpenta"} {
		if f.Gated[k][0] > 0.3 {
			t.Errorf("%s gated %.1f%% at IQ=32, expected little", k, 100*f.Gated[k][0])
		}
	}
	out := f.String()
	if !strings.Contains(out, "average") {
		t.Error("rendering lacks average row")
	}
}

func TestStrategySpecsDistinct(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations")
	}
	s := NewSuite()
	multi, err := s.Run(Spec{Kernel: "tsf", IQSize: 64, Reuse: true, Strategy: core.StrategyMulti, NBLTSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	single, err := s.Run(Spec{Kernel: "tsf", IQSize: 64, Reuse: true, Strategy: core.StrategySingle, NBLTSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Core.IterationsBuffered <= single.Core.IterationsBuffered {
		t.Error("strategies not distinguished in cache key or controller")
	}
}

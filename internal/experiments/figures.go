package experiments

import (
	"fmt"
	"strings"

	"reuseiq/internal/core"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
	"reuseiq/internal/workloads"
)

// Table1 renders the baseline configuration (paper Table 1).
func Table1() string {
	cfg := pipeline.DefaultConfig()
	var b strings.Builder
	b.WriteString("Table 1: baseline configuration\n")
	row := func(k, v string) { fmt.Fprintf(&b, "  %-22s %s\n", k, v) }
	row("Issue Queue", fmt.Sprintf("%d entries", cfg.IQSize))
	row("Load/Store Queue", fmt.Sprintf("%d entries", cfg.LSQSize))
	row("ROB", fmt.Sprintf("%d entries", cfg.ROBSize))
	row("Fetch Queue", fmt.Sprintf("%d entries", cfg.FetchQueueSize))
	row("Fetch/Decode Width", fmt.Sprintf("%d inst. per cycle", cfg.FetchWidth))
	row("Issue/Commit Width", fmt.Sprintf("%d inst. per cycle", cfg.IssueWidth))
	row("Function Units", fmt.Sprintf("%d IALU, %d IMULT, %d FPALU, %d FPMULT",
		cfg.FU.NumIntALU, cfg.FU.NumIntMul, cfg.FU.NumFPALU, cfg.FU.NumFPMul))
	row("Branch Predictor", fmt.Sprintf("bimod, %d entries, RAS %d entries",
		cfg.Bpred.BimodEntries, cfg.Bpred.RASEntries))
	row("BTB", fmt.Sprintf("%d set %d way assoc.", cfg.Bpred.BTBSets, cfg.Bpred.BTBWays))
	row("L1 ICache", fmt.Sprintf("%dKB, %d way, %d cycle",
		cfg.Mem.L1I.SizeBytes()/1024, cfg.Mem.L1I.Ways, cfg.Mem.L1I.HitLat))
	row("L1 DCache", fmt.Sprintf("%dKB, %d way, %d cycle",
		cfg.Mem.L1D.SizeBytes()/1024, cfg.Mem.L1D.Ways, cfg.Mem.L1D.HitLat))
	row("L2 UCache", fmt.Sprintf("%dKB, %d way, %d cycles",
		cfg.Mem.L2.SizeBytes()/1024, cfg.Mem.L2.Ways, cfg.Mem.L2.HitLat))
	row("TLB", fmt.Sprintf("ITLB: %d set %d way, DTLB: %d set %d way, %dKB page, %d cycle penalty",
		cfg.Mem.ITLB.Sets, cfg.Mem.ITLB.Ways, cfg.Mem.DTLB.Sets, cfg.Mem.DTLB.Ways,
		cfg.Mem.ITLB.PageBytes/1024, cfg.Mem.ITLB.MissLat))
	row("Memory", fmt.Sprintf("%d cycles first chunk, %d cycles rest",
		cfg.Mem.MemLatFirst, cfg.Mem.MemLatRest))
	row("NBLT", fmt.Sprintf("%d entries", cfg.Reuse.NBLTSize))
	return b.String()
}

// Table2 renders the benchmark list (paper Table 2).
func Table2() string {
	var b strings.Builder
	b.WriteString("Table 2: array-intensive applications\n")
	for _, k := range workloads.All() {
		fmt.Fprintf(&b, "  %-8s %s\n", k.Name, k.Source)
	}
	return b.String()
}

// Fig5 holds Figure 5's data: gated-cycle fraction per kernel and size.
type Fig5 struct {
	Sizes   []int
	Kernels []string
	Gated   map[string][]float64 // kernel -> per-size fraction
	Average []float64
}

// Figure5 measures the fraction of total execution cycles with the pipeline
// front-end gated, per issue-queue size.
func (s *Suite) Figure5(sizes []int) (*Fig5, error) {
	if err := s.Prewarm(sweepSpecs(sizes)); err != nil {
		return nil, err
	}
	f := &Fig5{Sizes: sizes, Kernels: KernelNames(), Gated: map[string][]float64{}}
	f.Average = make([]float64, len(sizes))
	for _, k := range f.Kernels {
		row := make([]float64, len(sizes))
		for i, iq := range sizes {
			r, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: -1})
			if err != nil {
				return nil, err
			}
			row[i] = r.Gated
			f.Average[i] += r.Gated / float64(len(f.Kernels))
		}
		f.Gated[k] = row
	}
	return f, nil
}

func (f *Fig5) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: pipeline front-end gated rate (in cycles)\n")
	fmt.Fprintf(&b, "  %-8s", "")
	for _, iq := range f.Sizes {
		fmt.Fprintf(&b, "  IQ%-4d", iq)
	}
	b.WriteString("\n")
	for _, k := range f.Kernels {
		fmt.Fprintf(&b, "  %-8s", k)
		for _, g := range f.Gated[k] {
			fmt.Fprintf(&b, "  %5.1f%%", 100*g)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  %-8s", "average")
	for _, g := range f.Average {
		fmt.Fprintf(&b, "  %5.1f%%", 100*g)
	}
	b.WriteString("\n")
	return b.String()
}

// Fig6 holds Figure 6's data: average per-cycle power savings of the
// instruction cache, branch predictor and issue queue, and the overhead
// hardware's share of total power, per issue-queue size.
type Fig6 struct {
	Sizes    []int
	ICache   []float64
	BPred    []float64
	IssueQ   []float64
	Overhead []float64
}

// Figure6 computes component power reductions averaged over all kernels.
func (s *Suite) Figure6(sizes []int) (*Fig6, error) {
	if err := s.Prewarm(sweepSpecs(sizes)); err != nil {
		return nil, err
	}
	f := &Fig6{Sizes: sizes,
		ICache: make([]float64, len(sizes)), BPred: make([]float64, len(sizes)),
		IssueQ: make([]float64, len(sizes)), Overhead: make([]float64, len(sizes))}
	names := KernelNames()
	for i, iq := range sizes {
		for _, k := range names {
			base, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: false, NBLTSize: -1})
			if err != nil {
				return nil, err
			}
			reuse, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: -1})
			if err != nil {
				return nil, err
			}
			sv := power.Compare(base.Power, reuse.Power)
			n := float64(len(names))
			f.ICache[i] += sv.Component[power.ICache] / n
			f.BPred[i] += sv.Component[power.BPred] / n
			f.IssueQ[i] += sv.Component[power.IssueQueue] / n
			f.Overhead[i] += sv.OverheadShare / n
		}
	}
	return f, nil
}

func (f *Fig6) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: per-cycle power savings (average over benchmarks)\n")
	fmt.Fprintf(&b, "  %-10s", "")
	for _, iq := range f.Sizes {
		fmt.Fprintf(&b, "  IQ%-4d", iq)
	}
	b.WriteString("\n")
	row := func(name string, vals []float64) {
		fmt.Fprintf(&b, "  %-10s", name)
		for _, v := range vals {
			fmt.Fprintf(&b, "  %5.1f%%", 100*v)
		}
		b.WriteString("\n")
	}
	row("icache", f.ICache)
	row("bpred", f.BPred)
	row("issueq", f.IssueQ)
	row("overhead", f.Overhead)
	return b.String()
}

// Fig7 holds Figure 7's data: overall per-cycle power reduction per kernel
// and size.
type Fig7 struct {
	Sizes   []int
	Kernels []string
	Overall map[string][]float64
	Average []float64
}

// Figure7 computes the whole-processor power reduction.
func (s *Suite) Figure7(sizes []int) (*Fig7, error) {
	if err := s.Prewarm(sweepSpecs(sizes)); err != nil {
		return nil, err
	}
	f := &Fig7{Sizes: sizes, Kernels: KernelNames(), Overall: map[string][]float64{},
		Average: make([]float64, len(sizes))}
	for _, k := range f.Kernels {
		row := make([]float64, len(sizes))
		for i, iq := range sizes {
			base, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: false, NBLTSize: -1})
			if err != nil {
				return nil, err
			}
			reuse, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: -1})
			if err != nil {
				return nil, err
			}
			row[i] = power.Compare(base.Power, reuse.Power).Overall
			f.Average[i] += row[i] / float64(len(f.Kernels))
		}
		f.Overall[k] = row
	}
	return f, nil
}

func (f *Fig7) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: overall power (per cycle) savings vs baseline\n")
	fmt.Fprintf(&b, "  %-8s", "")
	for _, iq := range f.Sizes {
		fmt.Fprintf(&b, "  IQ%-4d", iq)
	}
	b.WriteString("\n")
	for _, k := range f.Kernels {
		fmt.Fprintf(&b, "  %-8s", k)
		for _, v := range f.Overall[k] {
			fmt.Fprintf(&b, "  %5.1f%%", 100*v)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  %-8s", "average")
	for _, v := range f.Average {
		fmt.Fprintf(&b, "  %5.1f%%", 100*v)
	}
	b.WriteString("\n")
	return b.String()
}

// Fig8 holds Figure 8's data: IPC degradation per kernel and size.
type Fig8 struct {
	Sizes       []int
	Kernels     []string
	Degradation map[string][]float64
	Average     []float64
}

// Figure8 computes the performance impact: 1 - IPC(reuse)/IPC(baseline).
func (s *Suite) Figure8(sizes []int) (*Fig8, error) {
	if err := s.Prewarm(sweepSpecs(sizes)); err != nil {
		return nil, err
	}
	f := &Fig8{Sizes: sizes, Kernels: KernelNames(), Degradation: map[string][]float64{},
		Average: make([]float64, len(sizes))}
	for _, k := range f.Kernels {
		row := make([]float64, len(sizes))
		for i, iq := range sizes {
			base, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: false, NBLTSize: -1})
			if err != nil {
				return nil, err
			}
			reuse, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: -1})
			if err != nil {
				return nil, err
			}
			row[i] = 1 - reuse.IPC/base.IPC
			f.Average[i] += row[i] / float64(len(f.Kernels))
		}
		f.Degradation[k] = row
	}
	return f, nil
}

func (f *Fig8) String() string {
	var b strings.Builder
	b.WriteString("Figure 8: performance (IPC) degradation vs baseline\n")
	fmt.Fprintf(&b, "  %-8s", "")
	for _, iq := range f.Sizes {
		fmt.Fprintf(&b, "  IQ%-4d", iq)
	}
	b.WriteString("\n")
	for _, k := range f.Kernels {
		fmt.Fprintf(&b, "  %-8s", k)
		for _, v := range f.Degradation[k] {
			fmt.Fprintf(&b, "  %5.2f%%", 100*v)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  %-8s", "average")
	for _, v := range f.Average {
		fmt.Fprintf(&b, "  %5.2f%%", 100*v)
	}
	b.WriteString("\n")
	return b.String()
}

// Fig9 holds Figure 9's data: overall power reduction with original vs
// loop-distributed code at the baseline 64-entry issue queue.
type Fig9 struct {
	Kernels                   []string
	Original                  []float64
	Optimized                 []float64
	AvgOriginal, AvgOptimized float64
	// Supporting series the paper quotes in the text.
	GatedOriginal, GatedOptimized       float64
	PerfLossOriginal, PerfLossOptimized float64
}

// Figure9 compares original and loop-distributed code at IQ=64.
func (s *Suite) Figure9() (*Fig9, error) {
	const iq = 64
	f := &Fig9{Kernels: KernelNames()}
	var specs []Spec
	for _, k := range f.Kernels {
		for _, reuse := range []bool{false, true} {
			specs = append(specs,
				Spec{Kernel: k, IQSize: iq, Reuse: reuse, NBLTSize: -1},
				Spec{Kernel: k, IQSize: iq, Reuse: reuse, Distributed: true, NBLTSize: -1})
		}
	}
	if err := s.Prewarm(specs); err != nil {
		return nil, err
	}
	n := float64(len(f.Kernels))
	for _, k := range f.Kernels {
		get := func(reuse, dist bool) (RunResult, error) {
			return s.Run(Spec{Kernel: k, IQSize: iq, Reuse: reuse, Distributed: dist, NBLTSize: -1})
		}
		ob, err := get(false, false)
		if err != nil {
			return nil, err
		}
		or, err := get(true, false)
		if err != nil {
			return nil, err
		}
		db, err := get(false, true)
		if err != nil {
			return nil, err
		}
		dr, err := get(true, true)
		if err != nil {
			return nil, err
		}
		f.Original = append(f.Original, power.Compare(ob.Power, or.Power).Overall)
		f.Optimized = append(f.Optimized, power.Compare(db.Power, dr.Power).Overall)
		f.AvgOriginal += f.Original[len(f.Original)-1] / n
		f.AvgOptimized += f.Optimized[len(f.Optimized)-1] / n
		f.GatedOriginal += or.Gated / n
		f.GatedOptimized += dr.Gated / n
		f.PerfLossOriginal += (1 - or.IPC/ob.IPC) / n
		f.PerfLossOptimized += (1 - dr.IPC/db.IPC) / n
	}
	return f, nil
}

func (f *Fig9) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: impact of compiler optimization (loop distribution, IQ=64)\n")
	fmt.Fprintf(&b, "  %-8s  %9s  %9s\n", "", "original", "optimized")
	for i, k := range f.Kernels {
		fmt.Fprintf(&b, "  %-8s  %8.1f%%  %8.1f%%\n", k, 100*f.Original[i], 100*f.Optimized[i])
	}
	fmt.Fprintf(&b, "  %-8s  %8.1f%%  %8.1f%%\n", "average", 100*f.AvgOriginal, 100*f.AvgOptimized)
	fmt.Fprintf(&b, "  gated cycles: %.1f%% -> %.1f%%; IPC loss: %.1f%% -> %.1f%%\n",
		100*f.GatedOriginal, 100*f.GatedOptimized,
		100*f.PerfLossOriginal, 100*f.PerfLossOptimized)
	return b.String()
}

// NBLTAblation holds A1's data: buffering revoke rates with and without the
// non-bufferable loop table (paper §3 quotes ~40% -> <10%).
type NBLTAblation struct {
	Kernels             []string
	RateWithout         []float64 // revokes / buffering attempts, NBLT disabled
	RateWith            []float64 // NBLT = 8 entries
	AvgWithout, AvgWith float64
}

// AblationNBLT measures revoke rates at IQ=64.
func (s *Suite) AblationNBLT() (*NBLTAblation, error) {
	const iq = 64
	a := &NBLTAblation{Kernels: KernelNames()}
	var specs []Spec
	for _, k := range a.Kernels {
		specs = append(specs,
			Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: 0},
			Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: 8})
	}
	if err := s.Prewarm(specs); err != nil {
		return nil, err
	}
	rate := func(st core.Stats) float64 {
		if st.Bufferings == 0 {
			return 0
		}
		return float64(st.Revokes) / float64(st.Bufferings)
	}
	n := float64(len(a.Kernels))
	for _, k := range a.Kernels {
		off, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: 0})
		if err != nil {
			return nil, err
		}
		on, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: 8})
		if err != nil {
			return nil, err
		}
		a.RateWithout = append(a.RateWithout, rate(off.Core))
		a.RateWith = append(a.RateWith, rate(on.Core))
		a.AvgWithout += rate(off.Core) / n
		a.AvgWith += rate(on.Core) / n
	}
	return a, nil
}

func (a *NBLTAblation) String() string {
	var b strings.Builder
	b.WriteString("Ablation A1: buffering revoke rate, NBLT disabled vs 8 entries (IQ=64)\n")
	fmt.Fprintf(&b, "  %-8s  %8s  %8s\n", "", "no NBLT", "NBLT=8")
	for i, k := range a.Kernels {
		fmt.Fprintf(&b, "  %-8s  %7.1f%%  %7.1f%%\n", k, 100*a.RateWithout[i], 100*a.RateWith[i])
	}
	fmt.Fprintf(&b, "  %-8s  %7.1f%%  %7.1f%%\n", "average", 100*a.AvgWithout, 100*a.AvgWith)
	return b.String()
}

// StrategyAblation holds A2's data: single- vs multi-iteration buffering.
type StrategyAblation struct {
	Kernels []string
	// Per kernel: gated fraction and IPC under each strategy at IQ=64.
	GatedMulti, GatedSingle       []float64
	IPCMulti, IPCSingle           []float64
	AvgGatedMulti, AvgGatedSingle float64
	AvgIPCMulti, AvgIPCSingle     float64
}

// AblationStrategy compares the paper's multi-iteration buffering against
// single-iteration buffering (§2.2.1) at IQ=64.
func (s *Suite) AblationStrategy() (*StrategyAblation, error) {
	const iq = 64
	a := &StrategyAblation{Kernels: KernelNames()}
	var specs []Spec
	for _, k := range a.Kernels {
		specs = append(specs,
			Spec{Kernel: k, IQSize: iq, Reuse: true, Strategy: core.StrategyMulti, NBLTSize: -1},
			Spec{Kernel: k, IQSize: iq, Reuse: true, Strategy: core.StrategySingle, NBLTSize: -1})
	}
	if err := s.Prewarm(specs); err != nil {
		return nil, err
	}
	n := float64(len(a.Kernels))
	for _, k := range a.Kernels {
		multi, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, Strategy: core.StrategyMulti, NBLTSize: -1})
		if err != nil {
			return nil, err
		}
		single, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, Strategy: core.StrategySingle, NBLTSize: -1})
		if err != nil {
			return nil, err
		}
		a.GatedMulti = append(a.GatedMulti, multi.Gated)
		a.GatedSingle = append(a.GatedSingle, single.Gated)
		a.IPCMulti = append(a.IPCMulti, multi.IPC)
		a.IPCSingle = append(a.IPCSingle, single.IPC)
		a.AvgGatedMulti += multi.Gated / n
		a.AvgGatedSingle += single.Gated / n
		a.AvgIPCMulti += multi.IPC / n
		a.AvgIPCSingle += single.IPC / n
	}
	return a, nil
}

func (a *StrategyAblation) String() string {
	var b strings.Builder
	b.WriteString("Ablation A2: multi- vs single-iteration buffering (IQ=64)\n")
	fmt.Fprintf(&b, "  %-8s  %11s  %11s  %9s  %9s\n", "", "gated multi", "gated single", "IPC multi", "IPC single")
	for i, k := range a.Kernels {
		fmt.Fprintf(&b, "  %-8s  %10.1f%%  %11.1f%%  %9.2f  %9.2f\n",
			k, 100*a.GatedMulti[i], 100*a.GatedSingle[i], a.IPCMulti[i], a.IPCSingle[i])
	}
	fmt.Fprintf(&b, "  %-8s  %10.1f%%  %11.1f%%  %9.2f  %9.2f\n",
		"average", 100*a.AvgGatedMulti, 100*a.AvgGatedSingle, a.AvgIPCMulti, a.AvgIPCSingle)
	return b.String()
}

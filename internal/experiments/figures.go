package experiments

import (
	"fmt"
	"math"
	"strings"

	"reuseiq/internal/core"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
	"reuseiq/internal/workloads"
)

// Degraded runs appear in figure data as NaN cells; they render as "fail"
// and are excluded from averages.

// num formats v with verb, or right-aligns "fail" to width when v is NaN.
func num(v float64, verb string, width int) string {
	if math.IsNaN(v) {
		return fmt.Sprintf("%*s", width, "fail")
	}
	return fmt.Sprintf(verb, v)
}

// pct formats 100*v with verb, or right-aligns "fail" to width when v is NaN.
func pct(v float64, verb string, width int) string {
	return num(100*v, verb, width)
}

// colMeans averages each of cols columns across rows, skipping NaN cells. A
// column with no valid cells averages to NaN.
func colMeans(rows [][]float64, cols int) []float64 {
	out := make([]float64, cols)
	for i := range out {
		sum, n := 0.0, 0
		for _, row := range rows {
			if !math.IsNaN(row[i]) {
				sum += row[i]
				n++
			}
		}
		if n == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sum / float64(n)
		}
	}
	return out
}

// Table1 renders the baseline configuration (paper Table 1).
func Table1() string {
	cfg := pipeline.DefaultConfig()
	var b strings.Builder
	b.WriteString("Table 1: baseline configuration\n")
	row := func(k, v string) { fmt.Fprintf(&b, "  %-22s %s\n", k, v) }
	row("Issue Queue", fmt.Sprintf("%d entries", cfg.IQSize))
	row("Load/Store Queue", fmt.Sprintf("%d entries", cfg.LSQSize))
	row("ROB", fmt.Sprintf("%d entries", cfg.ROBSize))
	row("Fetch Queue", fmt.Sprintf("%d entries", cfg.FetchQueueSize))
	row("Fetch/Decode Width", fmt.Sprintf("%d inst. per cycle", cfg.FetchWidth))
	row("Issue/Commit Width", fmt.Sprintf("%d inst. per cycle", cfg.IssueWidth))
	row("Function Units", fmt.Sprintf("%d IALU, %d IMULT, %d FPALU, %d FPMULT",
		cfg.FU.NumIntALU, cfg.FU.NumIntMul, cfg.FU.NumFPALU, cfg.FU.NumFPMul))
	row("Branch Predictor", fmt.Sprintf("bimod, %d entries, RAS %d entries",
		cfg.Bpred.BimodEntries, cfg.Bpred.RASEntries))
	row("BTB", fmt.Sprintf("%d set %d way assoc.", cfg.Bpred.BTBSets, cfg.Bpred.BTBWays))
	row("L1 ICache", fmt.Sprintf("%dKB, %d way, %d cycle",
		cfg.Mem.L1I.SizeBytes()/1024, cfg.Mem.L1I.Ways, cfg.Mem.L1I.HitLat))
	row("L1 DCache", fmt.Sprintf("%dKB, %d way, %d cycle",
		cfg.Mem.L1D.SizeBytes()/1024, cfg.Mem.L1D.Ways, cfg.Mem.L1D.HitLat))
	row("L2 UCache", fmt.Sprintf("%dKB, %d way, %d cycles",
		cfg.Mem.L2.SizeBytes()/1024, cfg.Mem.L2.Ways, cfg.Mem.L2.HitLat))
	row("TLB", fmt.Sprintf("ITLB: %d set %d way, DTLB: %d set %d way, %dKB page, %d cycle penalty",
		cfg.Mem.ITLB.Sets, cfg.Mem.ITLB.Ways, cfg.Mem.DTLB.Sets, cfg.Mem.DTLB.Ways,
		cfg.Mem.ITLB.PageBytes/1024, cfg.Mem.ITLB.MissLat))
	row("Memory", fmt.Sprintf("%d cycles first chunk, %d cycles rest",
		cfg.Mem.MemLatFirst, cfg.Mem.MemLatRest))
	row("NBLT", fmt.Sprintf("%d entries", cfg.Reuse.NBLTSize))
	return b.String()
}

// Table2 renders the benchmark list (paper Table 2).
func Table2() string {
	var b strings.Builder
	b.WriteString("Table 2: array-intensive applications\n")
	for _, k := range workloads.All() {
		fmt.Fprintf(&b, "  %-8s %s\n", k.Name, k.Source)
	}
	return b.String()
}

// Fig5 holds Figure 5's data: gated-cycle fraction per kernel and size.
type Fig5 struct {
	Sizes   []int
	Kernels []string
	Gated   map[string][]float64 // kernel -> per-size fraction
	Average []float64
}

// Figure5 measures the fraction of total execution cycles with the pipeline
// front-end gated, per issue-queue size.
func (s *Suite) Figure5(sizes []int) (*Fig5, error) {
	if err := s.Prewarm(sweepSpecs(sizes)); err != nil {
		return nil, err
	}
	f := &Fig5{Sizes: sizes, Kernels: KernelNames(), Gated: map[string][]float64{}}
	rows := make([][]float64, 0, len(f.Kernels))
	for _, k := range f.Kernels {
		row := make([]float64, len(sizes))
		for i, iq := range sizes {
			r, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: -1})
			if err != nil {
				return nil, err
			}
			if r.Failed() {
				row[i] = math.NaN()
				continue
			}
			row[i] = r.Gated
		}
		f.Gated[k] = row
		rows = append(rows, row)
	}
	f.Average = colMeans(rows, len(sizes))
	return f, nil
}

func (f *Fig5) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: pipeline front-end gated rate (in cycles)\n")
	fmt.Fprintf(&b, "  %-8s", "")
	for _, iq := range f.Sizes {
		fmt.Fprintf(&b, "  IQ%-4d", iq)
	}
	b.WriteString("\n")
	for _, k := range f.Kernels {
		fmt.Fprintf(&b, "  %-8s", k)
		for _, g := range f.Gated[k] {
			b.WriteString("  " + pct(g, "%5.1f%%", 6))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  %-8s", "average")
	for _, g := range f.Average {
		b.WriteString("  " + pct(g, "%5.1f%%", 6))
	}
	b.WriteString("\n")
	return b.String()
}

// Fig6 holds Figure 6's data: average per-cycle power savings of the
// instruction cache, branch predictor and issue queue, and the overhead
// hardware's share of total power, per issue-queue size.
type Fig6 struct {
	Sizes    []int
	ICache   []float64
	BPred    []float64
	IssueQ   []float64
	Overhead []float64
}

// Figure6 computes component power reductions averaged over all kernels.
func (s *Suite) Figure6(sizes []int) (*Fig6, error) {
	if err := s.Prewarm(sweepSpecs(sizes)); err != nil {
		return nil, err
	}
	f := &Fig6{Sizes: sizes,
		ICache: make([]float64, len(sizes)), BPred: make([]float64, len(sizes)),
		IssueQ: make([]float64, len(sizes)), Overhead: make([]float64, len(sizes))}
	names := KernelNames()
	for i, iq := range sizes {
		// Average over the kernels whose baseline and reuse runs both
		// completed; a column with none is NaN.
		n := 0.0
		for _, k := range names {
			base, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: false, NBLTSize: -1})
			if err != nil {
				return nil, err
			}
			reuse, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: -1})
			if err != nil {
				return nil, err
			}
			if base.Failed() || reuse.Failed() {
				continue
			}
			sv := power.Compare(base.Power, reuse.Power)
			f.ICache[i] += sv.Component[power.ICache]
			f.BPred[i] += sv.Component[power.BPred]
			f.IssueQ[i] += sv.Component[power.IssueQueue]
			f.Overhead[i] += sv.OverheadShare
			n++
		}
		if n == 0 {
			n = math.NaN()
		}
		f.ICache[i] /= n
		f.BPred[i] /= n
		f.IssueQ[i] /= n
		f.Overhead[i] /= n
	}
	return f, nil
}

func (f *Fig6) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: per-cycle power savings (average over benchmarks)\n")
	fmt.Fprintf(&b, "  %-10s", "")
	for _, iq := range f.Sizes {
		fmt.Fprintf(&b, "  IQ%-4d", iq)
	}
	b.WriteString("\n")
	row := func(name string, vals []float64) {
		fmt.Fprintf(&b, "  %-10s", name)
		for _, v := range vals {
			b.WriteString("  " + pct(v, "%5.1f%%", 6))
		}
		b.WriteString("\n")
	}
	row("icache", f.ICache)
	row("bpred", f.BPred)
	row("issueq", f.IssueQ)
	row("overhead", f.Overhead)
	return b.String()
}

// Fig7 holds Figure 7's data: overall per-cycle power reduction per kernel
// and size.
type Fig7 struct {
	Sizes   []int
	Kernels []string
	Overall map[string][]float64
	Average []float64
}

// Figure7 computes the whole-processor power reduction.
func (s *Suite) Figure7(sizes []int) (*Fig7, error) {
	if err := s.Prewarm(sweepSpecs(sizes)); err != nil {
		return nil, err
	}
	f := &Fig7{Sizes: sizes, Kernels: KernelNames(), Overall: map[string][]float64{}}
	rows := make([][]float64, 0, len(f.Kernels))
	for _, k := range f.Kernels {
		row := make([]float64, len(sizes))
		for i, iq := range sizes {
			base, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: false, NBLTSize: -1})
			if err != nil {
				return nil, err
			}
			reuse, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: -1})
			if err != nil {
				return nil, err
			}
			if base.Failed() || reuse.Failed() {
				row[i] = math.NaN()
				continue
			}
			row[i] = power.Compare(base.Power, reuse.Power).Overall
		}
		f.Overall[k] = row
		rows = append(rows, row)
	}
	f.Average = colMeans(rows, len(sizes))
	return f, nil
}

func (f *Fig7) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: overall power (per cycle) savings vs baseline\n")
	fmt.Fprintf(&b, "  %-8s", "")
	for _, iq := range f.Sizes {
		fmt.Fprintf(&b, "  IQ%-4d", iq)
	}
	b.WriteString("\n")
	for _, k := range f.Kernels {
		fmt.Fprintf(&b, "  %-8s", k)
		for _, v := range f.Overall[k] {
			b.WriteString("  " + pct(v, "%5.1f%%", 6))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  %-8s", "average")
	for _, v := range f.Average {
		b.WriteString("  " + pct(v, "%5.1f%%", 6))
	}
	b.WriteString("\n")
	return b.String()
}

// Fig8 holds Figure 8's data: IPC degradation per kernel and size.
type Fig8 struct {
	Sizes       []int
	Kernels     []string
	Degradation map[string][]float64
	Average     []float64
}

// Figure8 computes the performance impact: 1 - IPC(reuse)/IPC(baseline).
func (s *Suite) Figure8(sizes []int) (*Fig8, error) {
	if err := s.Prewarm(sweepSpecs(sizes)); err != nil {
		return nil, err
	}
	f := &Fig8{Sizes: sizes, Kernels: KernelNames(), Degradation: map[string][]float64{}}
	rows := make([][]float64, 0, len(f.Kernels))
	for _, k := range f.Kernels {
		row := make([]float64, len(sizes))
		for i, iq := range sizes {
			base, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: false, NBLTSize: -1})
			if err != nil {
				return nil, err
			}
			reuse, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: -1})
			if err != nil {
				return nil, err
			}
			if base.Failed() || reuse.Failed() {
				row[i] = math.NaN()
				continue
			}
			row[i] = 1 - reuse.IPC/base.IPC
		}
		f.Degradation[k] = row
		rows = append(rows, row)
	}
	f.Average = colMeans(rows, len(sizes))
	return f, nil
}

func (f *Fig8) String() string {
	var b strings.Builder
	b.WriteString("Figure 8: performance (IPC) degradation vs baseline\n")
	fmt.Fprintf(&b, "  %-8s", "")
	for _, iq := range f.Sizes {
		fmt.Fprintf(&b, "  IQ%-4d", iq)
	}
	b.WriteString("\n")
	for _, k := range f.Kernels {
		fmt.Fprintf(&b, "  %-8s", k)
		for _, v := range f.Degradation[k] {
			b.WriteString("  " + pct(v, "%5.2f%%", 6))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  %-8s", "average")
	for _, v := range f.Average {
		b.WriteString("  " + pct(v, "%5.2f%%", 6))
	}
	b.WriteString("\n")
	return b.String()
}

// Fig9 holds Figure 9's data: overall power reduction with original vs
// loop-distributed code at the baseline 64-entry issue queue.
type Fig9 struct {
	Kernels                   []string
	Original                  []float64
	Optimized                 []float64
	AvgOriginal, AvgOptimized float64
	// Supporting series the paper quotes in the text.
	GatedOriginal, GatedOptimized       float64
	PerfLossOriginal, PerfLossOptimized float64
}

// Figure9 compares original and loop-distributed code at IQ=64.
func (s *Suite) Figure9() (*Fig9, error) {
	const iq = 64
	f := &Fig9{Kernels: KernelNames()}
	var specs []Spec
	for _, k := range f.Kernels {
		for _, reuse := range []bool{false, true} {
			specs = append(specs,
				Spec{Kernel: k, IQSize: iq, Reuse: reuse, NBLTSize: -1},
				Spec{Kernel: k, IQSize: iq, Reuse: reuse, Distributed: true, NBLTSize: -1})
		}
	}
	if err := s.Prewarm(specs); err != nil {
		return nil, err
	}
	n := 0.0
	for _, k := range f.Kernels {
		get := func(reuse, dist bool) (RunResult, error) {
			return s.Run(Spec{Kernel: k, IQSize: iq, Reuse: reuse, Distributed: dist, NBLTSize: -1})
		}
		ob, err := get(false, false)
		if err != nil {
			return nil, err
		}
		or, err := get(true, false)
		if err != nil {
			return nil, err
		}
		db, err := get(false, true)
		if err != nil {
			return nil, err
		}
		dr, err := get(true, true)
		if err != nil {
			return nil, err
		}
		if ob.Failed() || or.Failed() || db.Failed() || dr.Failed() {
			f.Original = append(f.Original, math.NaN())
			f.Optimized = append(f.Optimized, math.NaN())
			continue
		}
		f.Original = append(f.Original, power.Compare(ob.Power, or.Power).Overall)
		f.Optimized = append(f.Optimized, power.Compare(db.Power, dr.Power).Overall)
		f.AvgOriginal += f.Original[len(f.Original)-1]
		f.AvgOptimized += f.Optimized[len(f.Optimized)-1]
		f.GatedOriginal += or.Gated
		f.GatedOptimized += dr.Gated
		f.PerfLossOriginal += (1 - or.IPC/ob.IPC)
		f.PerfLossOptimized += (1 - dr.IPC/db.IPC)
		n++
	}
	if n == 0 {
		n = math.NaN()
	}
	f.AvgOriginal /= n
	f.AvgOptimized /= n
	f.GatedOriginal /= n
	f.GatedOptimized /= n
	f.PerfLossOriginal /= n
	f.PerfLossOptimized /= n
	return f, nil
}

func (f *Fig9) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: impact of compiler optimization (loop distribution, IQ=64)\n")
	fmt.Fprintf(&b, "  %-8s  %9s  %9s\n", "", "original", "optimized")
	for i, k := range f.Kernels {
		fmt.Fprintf(&b, "  %-8s  %s  %s\n", k,
			pct(f.Original[i], "%8.1f%%", 9), pct(f.Optimized[i], "%8.1f%%", 9))
	}
	fmt.Fprintf(&b, "  %-8s  %s  %s\n", "average",
		pct(f.AvgOriginal, "%8.1f%%", 9), pct(f.AvgOptimized, "%8.1f%%", 9))
	fmt.Fprintf(&b, "  gated cycles: %s -> %s; IPC loss: %s -> %s\n",
		pct(f.GatedOriginal, "%.1f%%", 4), pct(f.GatedOptimized, "%.1f%%", 4),
		pct(f.PerfLossOriginal, "%.1f%%", 4), pct(f.PerfLossOptimized, "%.1f%%", 4))
	return b.String()
}

// NBLTAblation holds A1's data: buffering revoke rates with and without the
// non-bufferable loop table (paper §3 quotes ~40% -> <10%).
type NBLTAblation struct {
	Kernels             []string
	RateWithout         []float64 // revokes / buffering attempts, NBLT disabled
	RateWith            []float64 // NBLT = 8 entries
	AvgWithout, AvgWith float64
}

// AblationNBLT measures revoke rates at IQ=64.
func (s *Suite) AblationNBLT() (*NBLTAblation, error) {
	const iq = 64
	a := &NBLTAblation{Kernels: KernelNames()}
	var specs []Spec
	for _, k := range a.Kernels {
		specs = append(specs,
			Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: 0},
			Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: 8})
	}
	if err := s.Prewarm(specs); err != nil {
		return nil, err
	}
	rate := func(st core.Stats) float64 {
		if st.Bufferings == 0 {
			return 0
		}
		return float64(st.Revokes) / float64(st.Bufferings)
	}
	n := 0.0
	for _, k := range a.Kernels {
		off, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: 0})
		if err != nil {
			return nil, err
		}
		on, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, NBLTSize: 8})
		if err != nil {
			return nil, err
		}
		if off.Failed() || on.Failed() {
			a.RateWithout = append(a.RateWithout, math.NaN())
			a.RateWith = append(a.RateWith, math.NaN())
			continue
		}
		a.RateWithout = append(a.RateWithout, rate(off.Core))
		a.RateWith = append(a.RateWith, rate(on.Core))
		a.AvgWithout += rate(off.Core)
		a.AvgWith += rate(on.Core)
		n++
	}
	if n == 0 {
		n = math.NaN()
	}
	a.AvgWithout /= n
	a.AvgWith /= n
	return a, nil
}

func (a *NBLTAblation) String() string {
	var b strings.Builder
	b.WriteString("Ablation A1: buffering revoke rate, NBLT disabled vs 8 entries (IQ=64)\n")
	fmt.Fprintf(&b, "  %-8s  %8s  %8s\n", "", "no NBLT", "NBLT=8")
	for i, k := range a.Kernels {
		fmt.Fprintf(&b, "  %-8s  %s  %s\n", k,
			pct(a.RateWithout[i], "%7.1f%%", 8), pct(a.RateWith[i], "%7.1f%%", 8))
	}
	fmt.Fprintf(&b, "  %-8s  %s  %s\n", "average",
		pct(a.AvgWithout, "%7.1f%%", 8), pct(a.AvgWith, "%7.1f%%", 8))
	return b.String()
}

// StrategyAblation holds A2's data: single- vs multi-iteration buffering.
type StrategyAblation struct {
	Kernels []string
	// Per kernel: gated fraction and IPC under each strategy at IQ=64.
	GatedMulti, GatedSingle       []float64
	IPCMulti, IPCSingle           []float64
	AvgGatedMulti, AvgGatedSingle float64
	AvgIPCMulti, AvgIPCSingle     float64
}

// AblationStrategy compares the paper's multi-iteration buffering against
// single-iteration buffering (§2.2.1) at IQ=64.
func (s *Suite) AblationStrategy() (*StrategyAblation, error) {
	const iq = 64
	a := &StrategyAblation{Kernels: KernelNames()}
	var specs []Spec
	for _, k := range a.Kernels {
		specs = append(specs,
			Spec{Kernel: k, IQSize: iq, Reuse: true, Strategy: core.StrategyMulti, NBLTSize: -1},
			Spec{Kernel: k, IQSize: iq, Reuse: true, Strategy: core.StrategySingle, NBLTSize: -1})
	}
	if err := s.Prewarm(specs); err != nil {
		return nil, err
	}
	n := 0.0
	for _, k := range a.Kernels {
		multi, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, Strategy: core.StrategyMulti, NBLTSize: -1})
		if err != nil {
			return nil, err
		}
		single, err := s.Run(Spec{Kernel: k, IQSize: iq, Reuse: true, Strategy: core.StrategySingle, NBLTSize: -1})
		if err != nil {
			return nil, err
		}
		if multi.Failed() || single.Failed() {
			a.GatedMulti = append(a.GatedMulti, math.NaN())
			a.GatedSingle = append(a.GatedSingle, math.NaN())
			a.IPCMulti = append(a.IPCMulti, math.NaN())
			a.IPCSingle = append(a.IPCSingle, math.NaN())
			continue
		}
		a.GatedMulti = append(a.GatedMulti, multi.Gated)
		a.GatedSingle = append(a.GatedSingle, single.Gated)
		a.IPCMulti = append(a.IPCMulti, multi.IPC)
		a.IPCSingle = append(a.IPCSingle, single.IPC)
		a.AvgGatedMulti += multi.Gated
		a.AvgGatedSingle += single.Gated
		a.AvgIPCMulti += multi.IPC
		a.AvgIPCSingle += single.IPC
		n++
	}
	if n == 0 {
		n = math.NaN()
	}
	a.AvgGatedMulti /= n
	a.AvgGatedSingle /= n
	a.AvgIPCMulti /= n
	a.AvgIPCSingle /= n
	return a, nil
}

func (a *StrategyAblation) String() string {
	var b strings.Builder
	b.WriteString("Ablation A2: multi- vs single-iteration buffering (IQ=64)\n")
	fmt.Fprintf(&b, "  %-8s  %11s  %11s  %9s  %9s\n", "", "gated multi", "gated single", "IPC multi", "IPC single")
	for i, k := range a.Kernels {
		fmt.Fprintf(&b, "  %-8s  %s  %s  %s  %s\n",
			k, pct(a.GatedMulti[i], "%10.1f%%", 11), pct(a.GatedSingle[i], "%11.1f%%", 12),
			num(a.IPCMulti[i], "%9.2f", 9), num(a.IPCSingle[i], "%9.2f", 9))
	}
	fmt.Fprintf(&b, "  %-8s  %s  %s  %s  %s\n",
		"average", pct(a.AvgGatedMulti, "%10.1f%%", 11), pct(a.AvgGatedSingle, "%11.1f%%", 12),
		num(a.AvgIPCMulti, "%9.2f", 9), num(a.AvgIPCSingle, "%9.2f", 9))
	return b.String()
}

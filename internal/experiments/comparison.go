package experiments

import (
	"fmt"
	"strings"

	"reuseiq/internal/altfe"
	"reuseiq/internal/mem"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
)

// FrontEndComparison is an extension experiment (not a figure in the paper):
// it puts the paper's reuse-capable issue queue side by side with the two
// prior-art front-end power mechanisms its introduction cites — a 512B
// filter cache and a 32-entry dynamic loop cache — on the same kernels and
// machine (IQ=64). Reported per kernel: instruction-cache power savings,
// overall power savings, and IPC change, each versus the plain baseline.
type FrontEndComparison struct {
	Kernels []string
	// Indexed [kernel][mechanism]; mechanisms: filter, loopcache, reuse.
	ICacheSave  map[string][3]float64
	OverallSave map[string][3]float64 // per-cycle power (the paper's metric)
	EPISave     map[string][3]float64 // energy per instruction (fair under slowdown)
	IPCDelta    map[string][3]float64 // negative = slower than baseline
	AvgICache   [3]float64
	AvgOverall  [3]float64
	AvgEPI      [3]float64
	AvgIPC      [3]float64
}

// MechanismNames labels the comparison columns.
var MechanismNames = [3]string{"filter", "loopcache", "reuse-iq"}

// CompareFrontEnds runs the comparison at the paper's baseline configuration.
func (s *Suite) CompareFrontEnds() (*FrontEndComparison, error) {
	const iq = 64
	f := &FrontEndComparison{
		Kernels:     KernelNames(),
		ICacheSave:  map[string][3]float64{},
		OverallSave: map[string][3]float64{},
		EPISave:     map[string][3]float64{},
		IPCDelta:    map[string][3]float64{},
	}

	run := func(kernel string, mutate func(*pipeline.Config)) (pipeline.Machine, power.Report, error) {
		mp, err := s.program(kernel, false)
		if err != nil {
			return pipeline.Machine{}, power.Report{}, err
		}
		cfg := pipeline.BaselineConfig().WithIQSize(iq)
		if mutate != nil {
			mutate(&cfg)
		}
		m := pipeline.New(cfg, mp)
		if err := m.Run(); err != nil {
			return pipeline.Machine{}, power.Report{}, err
		}
		return *m, power.Analyze(m), nil
	}

	n := float64(len(f.Kernels))
	for _, k := range f.Kernels {
		baseM, baseR, err := run(k, nil)
		if err != nil {
			return nil, err
		}
		variants := []func(*pipeline.Config){
			func(c *pipeline.Config) { c.Mem.L0I = mem.DefaultFilterCache() },
			func(c *pipeline.Config) { c.LoopCache = &altfe.LoopCacheConfig{Entries: 32} },
			func(c *pipeline.Config) { c.Reuse.Enabled = true; c.Reuse.NBLTSize = 8 },
		}
		var ic, ov, epi, ipc [3]float64
		for i, mutate := range variants {
			m, r, err := run(k, mutate)
			if err != nil {
				return nil, err
			}
			sv := power.Compare(baseR, r)
			// For the filter cache, the relevant "instruction cache"
			// saving is L1I + L0 together against the baseline L1I.
			icSave := sv.Component[power.ICache]
			if i == 0 {
				combined := r.PerCycle(power.ICache) + r.PerCycle(power.FilterCache)
				icSave = 1 - combined/baseR.PerCycle(power.ICache)
			}
			if i == 1 {
				combined := r.PerCycle(power.ICache) + r.PerCycle(power.LoopCacheBuf)
				icSave = 1 - combined/baseR.PerCycle(power.ICache)
			}
			ic[i] = icSave
			ov[i] = sv.Overall
			epi[i] = 1 - r.EPI()/baseR.EPI()
			ipc[i] = m.IPC()/baseM.IPC() - 1
			f.AvgICache[i] += icSave / n
			f.AvgOverall[i] += sv.Overall / n
			f.AvgEPI[i] += epi[i] / n
			f.AvgIPC[i] += ipc[i] / n
		}
		f.ICacheSave[k] = ic
		f.OverallSave[k] = ov
		f.EPISave[k] = epi
		f.IPCDelta[k] = ipc
	}
	return f, nil
}

func (f *FrontEndComparison) String() string {
	var b strings.Builder
	b.WriteString("Extension: reuse issue queue vs prior-art front ends (IQ=64, vs plain baseline)\n")
	b.WriteString("  icache power savings (incl. the mechanism's own buffer):\n")
	fmt.Fprintf(&b, "  %-8s  %9s  %9s  %9s\n", "", MechanismNames[0], MechanismNames[1], MechanismNames[2])
	for _, k := range f.Kernels {
		v := f.ICacheSave[k]
		fmt.Fprintf(&b, "  %-8s  %8.1f%%  %8.1f%%  %8.1f%%\n", k, 100*v[0], 100*v[1], 100*v[2])
	}
	fmt.Fprintf(&b, "  %-8s  %8.1f%%  %8.1f%%  %8.1f%%\n", "average",
		100*f.AvgICache[0], 100*f.AvgICache[1], 100*f.AvgICache[2])
	b.WriteString("  overall power savings:\n")
	for _, k := range f.Kernels {
		v := f.OverallSave[k]
		fmt.Fprintf(&b, "  %-8s  %8.1f%%  %8.1f%%  %8.1f%%\n", k, 100*v[0], 100*v[1], 100*v[2])
	}
	fmt.Fprintf(&b, "  %-8s  %8.1f%%  %8.1f%%  %8.1f%%\n", "average",
		100*f.AvgOverall[0], 100*f.AvgOverall[1], 100*f.AvgOverall[2])
	b.WriteString("  energy-per-instruction savings (fair under slowdowns):\n")
	for _, k := range f.Kernels {
		v := f.EPISave[k]
		fmt.Fprintf(&b, "  %-8s  %8.1f%%  %8.1f%%  %8.1f%%\n", k, 100*v[0], 100*v[1], 100*v[2])
	}
	fmt.Fprintf(&b, "  %-8s  %8.1f%%  %8.1f%%  %8.1f%%\n", "average",
		100*f.AvgEPI[0], 100*f.AvgEPI[1], 100*f.AvgEPI[2])
	fmt.Fprintf(&b, "  IPC vs baseline (average): %+.2f%%  %+.2f%%  %+.2f%%\n",
		100*f.AvgIPC[0], 100*f.AvgIPC[1], 100*f.AvgIPC[2])
	return b.String()
}

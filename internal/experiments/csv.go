package experiments

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// CSV export for every figure, so the series can be re-plotted outside Go.
// Each writer emits one header row followed by one row per kernel (plus an
// average row where the figure has one). Values are fractions, not percent;
// a degraded (failed) cell is written as "fail", matching the text report.

func writeRow(w io.Writer, cells ...string) error {
	for i, c := range cells {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, quoteCell(c)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// quoteCell applies RFC 4180 quoting: a cell containing a separator, quote
// or line break is wrapped in double quotes with inner quotes doubled, so
// arbitrary kernel names survive a round trip through encoding/csv.
func quoteCell(c string) string {
	if !strings.ContainsAny(c, ",\"\n\r") {
		return c
	}
	return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
}

func f2s(v float64) string {
	if math.IsNaN(v) {
		return "fail"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// WriteCSV emits Figure 5 as CSV.
func (f *Fig5) WriteCSV(w io.Writer) error {
	header := []string{"kernel"}
	for _, iq := range f.Sizes {
		header = append(header, fmt.Sprintf("iq%d", iq))
	}
	if err := writeRow(w, header...); err != nil {
		return err
	}
	for _, k := range f.Kernels {
		row := []string{k}
		for _, v := range f.Gated[k] {
			row = append(row, f2s(v))
		}
		if err := writeRow(w, row...); err != nil {
			return err
		}
	}
	row := []string{"average"}
	for _, v := range f.Average {
		row = append(row, f2s(v))
	}
	return writeRow(w, row...)
}

// WriteCSV emits Figure 6 as CSV (rows = component, columns = sizes).
func (f *Fig6) WriteCSV(w io.Writer) error {
	header := []string{"component"}
	for _, iq := range f.Sizes {
		header = append(header, fmt.Sprintf("iq%d", iq))
	}
	if err := writeRow(w, header...); err != nil {
		return err
	}
	rows := []struct {
		name string
		vals []float64
	}{
		{"icache", f.ICache}, {"bpred", f.BPred}, {"issueq", f.IssueQ}, {"overhead", f.Overhead},
	}
	for _, r := range rows {
		row := []string{r.name}
		for _, v := range r.vals {
			row = append(row, f2s(v))
		}
		if err := writeRow(w, row...); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits Figure 7 as CSV.
func (f *Fig7) WriteCSV(w io.Writer) error {
	header := []string{"kernel"}
	for _, iq := range f.Sizes {
		header = append(header, fmt.Sprintf("iq%d", iq))
	}
	if err := writeRow(w, header...); err != nil {
		return err
	}
	for _, k := range f.Kernels {
		row := []string{k}
		for _, v := range f.Overall[k] {
			row = append(row, f2s(v))
		}
		if err := writeRow(w, row...); err != nil {
			return err
		}
	}
	row := []string{"average"}
	for _, v := range f.Average {
		row = append(row, f2s(v))
	}
	return writeRow(w, row...)
}

// WriteCSV emits Figure 8 as CSV.
func (f *Fig8) WriteCSV(w io.Writer) error {
	header := []string{"kernel"}
	for _, iq := range f.Sizes {
		header = append(header, fmt.Sprintf("iq%d", iq))
	}
	if err := writeRow(w, header...); err != nil {
		return err
	}
	for _, k := range f.Kernels {
		row := []string{k}
		for _, v := range f.Degradation[k] {
			row = append(row, f2s(v))
		}
		if err := writeRow(w, row...); err != nil {
			return err
		}
	}
	row := []string{"average"}
	for _, v := range f.Average {
		row = append(row, f2s(v))
	}
	return writeRow(w, row...)
}

// WriteCSV emits Figure 9 as CSV.
func (f *Fig9) WriteCSV(w io.Writer) error {
	if err := writeRow(w, "kernel", "original", "optimized"); err != nil {
		return err
	}
	for i, k := range f.Kernels {
		if err := writeRow(w, k, f2s(f.Original[i]), f2s(f.Optimized[i])); err != nil {
			return err
		}
	}
	return writeRow(w, "average", f2s(f.AvgOriginal), f2s(f.AvgOptimized))
}

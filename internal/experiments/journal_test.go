package experiments

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"reuseiq/internal/pipeline"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "sweep.jsonl")
}

// countRecords replays the journal on disk and returns its records.
func countRecords(t *testing.T, path string) []cellRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, _, err := replay(f)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestJournalRecordsAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations")
	}
	path := journalPath(t)
	specs := []Spec{
		{Kernel: "tsf", IQSize: 32, Reuse: true, NBLTSize: -1},
		{Kernel: "aps", IQSize: 32, Reuse: false, NBLTSize: -1},
	}

	a := NewSuite()
	ja, n, err := a.AttachJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("fresh journal recovered %d cells", n)
	}
	want := make([]RunResult, len(specs))
	for i, sp := range specs {
		if want[i], err = a.Run(sp); err != nil {
			t.Fatal(err)
		}
	}
	ja.Close()

	if got := countRecords(t, path); len(got) != len(specs) {
		t.Fatalf("journal holds %d records, want %d", len(got), len(specs))
	}
	csvData, err := os.ReadFile(path + ".csv")
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(csvData), "\n"); lines != len(specs)+1 {
		t.Errorf("journal CSV has %d lines, want header + %d rows", lines, len(specs))
	}

	b := NewSuite()
	jb, n, err := b.AttachJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer jb.Close()
	if n != len(specs) {
		t.Fatalf("resume recovered %d cells, want %d", n, len(specs))
	}
	for i, sp := range specs {
		got, err := b.Run(sp)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("resumed result for %v differs:\n got %+v\nwant %+v", sp, got, want[i])
		}
	}
	// Served from cache: no new records may have been appended.
	if got := countRecords(t, path); len(got) != len(specs) {
		t.Fatalf("resumed runs double-counted: %d records, want %d", len(got), len(specs))
	}
}

// TestJournalSeedsCacheWithoutSimulating proves a recorded cell is answered
// from the journal alone: the record names a kernel that does not exist, so
// any attempt to actually simulate it would fail loudly.
func TestJournalSeedsCacheWithoutSimulating(t *testing.T) {
	path := journalPath(t)
	j, _, err := openJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	sp := Spec{Kernel: "no-such-kernel", IQSize: 48, Reuse: true, NBLTSize: -1}
	fake := RunResult{Kernel: sp.Kernel, IQSize: sp.IQSize, Reuse: true, Cycles: 12345, Commits: 678, IPC: 1.5}
	if err := j.record(sp.key(), fake); err != nil {
		t.Fatal(err)
	}
	j.Close()

	s := NewSuite()
	js, n, err := s.AttachJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer js.Close()
	if n != 1 {
		t.Fatalf("recovered %d cells, want 1", n)
	}
	got, err := s.Run(sp)
	if err != nil {
		t.Fatalf("journaled cell re-simulated (and failed): %v", err)
	}
	if got.Cycles != fake.Cycles || got.Commits != fake.Commits {
		t.Errorf("got %+v, want the journaled record", got)
	}
}

func TestJournalFreshRefusesExistingRecords(t *testing.T) {
	path := journalPath(t)
	j, _, err := openJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.record(runKey{kernel: "x", iq: 32, nblt: 8}, RunResult{}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, _, err := NewSuite().AttachJournal(path, false); err == nil {
		t.Fatal("fresh attach accepted a journal with records")
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := journalPath(t)
	j, _, err := openJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	k := runKey{kernel: "x", iq: 32, nblt: 8}
	if err := j.record(k, RunResult{Kernel: "x", IQSize: 32, Cycles: 99}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	good, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-append: a partial JSON object with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"v":1,"kernel":"y","iq":6`)
	f.Close()

	s := NewSuite()
	j2, n, err := s.AttachJournal(path, true)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	defer j2.Close()
	if n != 1 {
		t.Fatalf("recovered %d cells, want the 1 complete record", n)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != good.Size() {
		t.Errorf("torn tail not truncated: %d bytes, want %d", st.Size(), good.Size())
	}
	// Appending after the truncation must yield a well-formed log again.
	if err := j2.record(runKey{kernel: "z", iq: 64, nblt: 8}, RunResult{}); err != nil {
		t.Fatal(err)
	}
	if got := countRecords(t, path); len(got) != 2 {
		t.Fatalf("post-truncation journal holds %d records, want 2", len(got))
	}
}

func TestJournalWholeLineGarbageEndsReplay(t *testing.T) {
	path := journalPath(t)
	if err := os.WriteFile(path, []byte("!!not json!!\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewSuite()
	j, n, err := s.AttachJournal(path, true)
	if err != nil {
		t.Fatalf("corrupt journal rejected instead of degraded: %v", err)
	}
	defer j.Close()
	if n != 0 {
		t.Fatalf("recovered %d cells from garbage", n)
	}
}

func TestJournalVersionMismatch(t *testing.T) {
	path := journalPath(t)
	if err := os.WriteFile(path, []byte(`{"v":2,"kernel":"x","iq":32,"nblt":8}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewSuite().AttachJournal(path, true); err == nil {
		t.Fatal("future-version record accepted")
	}
}

// runCfg mirrors Suite.Run's configuration derivation for a spec.
func runCfg(sp Spec) pipeline.Config {
	cfg := pipeline.DefaultConfig().WithIQSize(sp.IQSize)
	cfg.Reuse.Enabled = sp.Reuse
	cfg.Reuse.Strategy = sp.Strategy
	cfg.Reuse.NBLTSize = sp.key().nblt
	return cfg
}

// TestJournalCheckpointMidCellResume pins the mid-cell path deterministically:
// a cell is checkpointed partway, the checkpoint restores, and a suite that
// resumes from it produces exactly the result of an uninterrupted run.
func TestJournalCheckpointMidCellResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations")
	}
	sp := Spec{Kernel: "tsf", IQSize: 32, Reuse: true, NBLTSize: -1}
	k := sp.key()
	cfg := runCfg(sp)

	straight := NewSuite()
	want, err := straight.Run(sp)
	if err != nil {
		t.Fatal(err)
	}

	path := journalPath(t)
	j, _, err := openJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Plant a genuine mid-run checkpoint, as a killed sweep would leave.
	mp, err := NewSuite().program(sp.Kernel, sp.Distributed)
	if err != nil {
		t.Fatal(err)
	}
	m := pipeline.New(cfg, mp)
	if err := m.RunBreakable(want.Cycles/3, func() bool { return true }); !errors.Is(err, pipeline.ErrStopped) {
		t.Fatalf("mid-run stop: %v", err)
	}
	if err := j.checkpoint(k, m); err != nil {
		t.Fatal(err)
	}
	midCycle := m.C.Cycles

	resumed := NewSuite()
	j2, n, err := resumed.AttachJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n != 0 {
		t.Fatalf("recovered %d completed cells, want 0 (cell was in flight)", n)
	}
	// The checkpoint must actually restore to the planted cycle.
	if rm := j2.tryResume(k, cfg, mp); rm == nil {
		t.Fatal("planted checkpoint did not restore")
	} else if rm.C.Cycles != midCycle {
		t.Fatalf("restored at cycle %d, checkpointed at %d", rm.C.Cycles, midCycle)
	} else {
		rm.Release()
	}

	got, err := resumed.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed cell differs from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}
	// Completion must retire the checkpoint.
	if _, err := os.Stat(j2.ckptPath(k)); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after cell completion: %v", err)
	}
}

// TestJournalBadCheckpointDegrades plants unusable checkpoints — corrupt
// bytes, a truncated image, and one taken under a different configuration —
// and requires the cell to fall back to a clean full run with an identical
// result, deleting the bad file.
func TestJournalBadCheckpointDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations")
	}
	sp := Spec{Kernel: "aps", IQSize: 32, Reuse: true, NBLTSize: -1}
	k := sp.key()

	straight := NewSuite()
	want, err := straight.Run(sp)
	if err != nil {
		t.Fatal(err)
	}

	plantMismatched := func(t *testing.T, j *Journal) {
		// A checkpoint from a different IQ size: fingerprint must reject it.
		other := Spec{Kernel: "aps", IQSize: 64, Reuse: true, NBLTSize: -1}
		mp, err := NewSuite().program(other.Kernel, other.Distributed)
		if err != nil {
			t.Fatal(err)
		}
		m := pipeline.New(runCfg(other), mp)
		if err := m.RunBreakable(500, func() bool { return true }); !errors.Is(err, pipeline.ErrStopped) {
			t.Fatalf("mid-run stop: %v", err)
		}
		if err := j.checkpoint(k, m); err != nil {
			t.Fatal(err)
		}
		m.Release()
	}

	cases := []struct {
		name  string
		plant func(t *testing.T, j *Journal)
	}{
		{"corrupt", func(t *testing.T, j *Journal) {
			if err := os.WriteFile(j.ckptPath(k), []byte("REUSEIQSgarbage garbage garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, j *Journal) {
			mp, err := NewSuite().program(sp.Kernel, sp.Distributed)
			if err != nil {
				t.Fatal(err)
			}
			m := pipeline.New(runCfg(sp), mp)
			if err := m.RunBreakable(500, func() bool { return true }); !errors.Is(err, pipeline.ErrStopped) {
				t.Fatalf("mid-run stop: %v", err)
			}
			if err := j.checkpoint(k, m); err != nil {
				t.Fatal(err)
			}
			m.Release()
			img, err := os.ReadFile(j.ckptPath(k))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(j.ckptPath(k), img[:len(img)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"config-mismatch", plantMismatched},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := journalPath(t)
			s := NewSuite()
			j, _, err := s.AttachJournal(path, true)
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			tc.plant(t, j)
			got, err := s.Run(sp)
			if err != nil {
				t.Fatalf("bad checkpoint aborted the cell: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("degraded run differs from clean run:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestCrashResumeKill9 is the end-to-end crash drill: a child process sweeps
// with a journal attached, the parent SIGKILLs it mid-sweep, resumes the
// journal in-process, and requires the finished sweep — figure rendering
// included — to be identical to one that was never interrupted.
func TestCrashResumeKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess sweep")
	}
	path := os.Getenv("REUSEIQ_JOURNAL_PATH")
	if os.Getenv("REUSEIQ_JOURNAL_CHILD") == "1" {
		childSweep(t, path)
		return
	}

	path = filepath.Join(t.TempDir(), "sweep.jsonl")
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashResumeKill9$")
	cmd.Env = append(os.Environ(), "REUSEIQ_JOURNAL_CHILD=1", "REUSEIQ_JOURNAL_PATH="+path)
	var childOut bytes.Buffer
	cmd.Stdout = &childOut
	cmd.Stderr = &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Kill as soon as the journal shows progress, which lands mid-sweep with
	// later cells unrecorded (and, typically, one in flight).
	deadline := time.Now().Add(60 * time.Second)
	killed := false
	for time.Now().Before(deadline) {
		if f, err := os.Open(path); err == nil {
			recs, _, _ := replay(f)
			f.Close()
			if len(recs) >= 2 {
				cmd.Process.Kill()
				killed = true
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	err := cmd.Wait()
	if !killed {
		t.Fatalf("child produced no journal records to kill over: %v\n%s", err, childOut.String())
	}
	if err == nil {
		t.Log("child finished before the kill landed; resume still verified below")
	}

	recsAtKill := countRecords(t, path)
	if len(recsAtKill) == len(childSpecs()) {
		t.Log("kill landed after the final cell; resume degenerates to pure replay")
	}

	resumed := NewSuite()
	j, n, err := resumed.AttachJournal(path, true)
	if err != nil {
		t.Fatalf("resume after kill -9: %v", err)
	}
	defer j.Close()
	if n != len(recsAtKill) {
		t.Fatalf("recovered %d cells, journal holds %d", n, len(recsAtKill))
	}
	if err := resumed.Prewarm(childSpecs()); err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}

	straight := NewSuite()
	if err := straight.Prewarm(childSpecs()); err != nil {
		t.Fatal(err)
	}
	for _, sp := range childSpecs() {
		a, err := resumed.Run(sp)
		if err != nil {
			t.Fatal(err)
		}
		b, err := straight.Run(sp)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: resumed result differs from uninterrupted run:\n got %+v\nwant %+v", sp, a, b)
		}
	}

	// The figures the sweep feeds must come out byte-identical.
	fa, err := resumed.Figure5([]int{32})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := straight.Figure5([]int{32})
	if err != nil {
		t.Fatal(err)
	}
	var ca, cb bytes.Buffer
	if err := fa.WriteCSV(&ca); err != nil {
		t.Fatal(err)
	}
	if err := fb.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Errorf("Figure 5 CSV differs after crash resume:\n%s\nvs\n%s", ca.String(), cb.String())
	}
	if fa.String() != fb.String() {
		t.Error("Figure 5 rendering differs after crash resume")
	}

	// Every cell exactly once: completing the sweep must not have re-recorded
	// the cells recovered from the journal.
	final := countRecords(t, path)
	if len(final) != len(childSpecs()) {
		t.Fatalf("journal holds %d records for %d specs", len(final), len(childSpecs()))
	}
	seen := map[runKey]bool{}
	for _, rec := range final {
		if seen[rec.key()] {
			t.Errorf("cell %+v recorded twice", rec.key())
		}
		seen[rec.key()] = true
	}
}

// childSpecs is the sweep the crash drill runs: Figure 5's IQ=32 column.
func childSpecs() []Spec { return sweepSpecs([]int{32}) }

// childSweep is the subprocess half of TestCrashResumeKill9: sweep with a
// journal and an aggressive checkpoint interval, expecting to be killed.
func childSweep(t *testing.T, path string) {
	if path == "" {
		t.Fatal("REUSEIQ_JOURNAL_PATH not set")
	}
	s := NewSuite()
	s.Parallelism = 1 // serialize so the parent's kill lands mid-cell, not between sweeps
	j, _, err := s.AttachJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.CheckpointEvery = 20_000
	if err := s.Prewarm(childSpecs()); err != nil {
		t.Fatal(err)
	}
}

// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 3 and 4) plus the ablations called out in DESIGN.md:
//
//	Table 1   baseline processor configuration
//	Table 2   benchmark list
//	Figure 5  % of cycles with the pipeline front-end gated vs IQ size
//	Figure 6  power reduction in icache / bpred / issue queue + overhead
//	Figure 7  overall per-benchmark power reduction vs IQ size
//	Figure 8  IPC degradation vs IQ size
//	Figure 9  overall power reduction, original vs loop-distributed code
//	A1        NBLT ablation (buffering revoke rates)
//	A2        single- vs multi-iteration buffering strategy
//
// Runs are cached by configuration, so figures sharing the same simulations
// (6, 7, 8 share Figure 5's runs) reuse them.
package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"reuseiq/internal/compiler"
	"reuseiq/internal/core"
	"reuseiq/internal/ffwd"
	"reuseiq/internal/flightrec"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
	"reuseiq/internal/prog"
	"reuseiq/internal/runstore"
	"reuseiq/internal/telemetry"
	"reuseiq/internal/workloads"
)

// DefaultSizes is the paper's issue-queue size sweep.
var DefaultSizes = []int{32, 64, 128, 256}

// RunResult is the outcome of one simulation.
type RunResult struct {
	Kernel      string
	IQSize      int
	Reuse       bool
	Distributed bool

	Cycles  uint64
	Commits uint64
	IPC     float64
	Gated   float64 // fraction of cycles with the front end gated

	Power power.Report
	Core  core.Stats

	// Err marks a degraded partial result: the simulation aborted (watchdog
	// deadlock or cycle budget) even after a retry, and the stats above
	// cover only the cycles before the abort. Figures render such cells as
	// "fail" and exclude them from averages.
	Err error
	// Retried reports that the run only completed (or finally failed) after
	// a retry with an enlarged cycle budget.
	Retried bool
	// FlightRec is the post-mortem flight-recording directory left behind
	// for a failed cell when the suite records (Suite.FlightRecDir); open
	// it with reusedbg -dir. Empty for healthy cells — their recordings are
	// deleted on completion.
	FlightRec string
	// RunID is the cell's id in the run ledger (Suite.UseLedger), empty when
	// no ledger records — or when the cell was served from cache (a journal
	// resume replays the cell, it does not re-run it, so no new record is
	// appended and no id exists in this process).
	RunID string
}

// Failed reports whether this is a degraded partial result.
func (r RunResult) Failed() bool { return r.Err != nil }

type runKey struct {
	kernel   string
	iq       int
	reuse    bool
	dist     bool
	strategy core.Strategy
	nblt     int
}

// Suite runs and caches simulations.
type Suite struct {
	mu       sync.Mutex
	programs map[string]*prog.Program // kernel(+dist) -> compiled image
	results  map[runKey]RunResult
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Sabotage, when non-nil, marks specs that must fail: matching runs get
	// a tiny cycle budget so they deterministically abort. It exists to
	// exercise the degrade-to-partial path end to end (tests and
	// cmd/reusebench -forcefail).
	Sabotage func(Spec) bool
	// Progress, when non-nil, is called after each Prewarm spec finishes
	// with the count of completed specs, the total for that Prewarm call,
	// the spec that just completed, and its result (zero on a setup error).
	// The result carries the cell's ledger RunID, so progress streams can be
	// correlated with ledger records. Calls are serialized; cached specs
	// report instantly. cmd/reusebench uses it for live sweep progress.
	Progress func(done, total int, sp Spec, r RunResult)
	// FastForward opts every run into the analytic fast-forward engine
	// (internal/ffwd). Results are byte-identical either way — the engine
	// only skips provably periodic spans — so this is purely a wall-clock
	// lever for large sweeps.
	FastForward bool
	// FlightRecDir, when non-empty, runs every cell with a flight recorder
	// attached: a cell that aborts (even after its retry) leaves its
	// recording under this directory as a post-mortem artifact
	// (RunResult.FlightRec; open with reusedbg -dir), while healthy cells
	// delete theirs on completion. Recording holds the analytic
	// fast-forward engine down (bit-exact replay contract), so sweeps pay
	// wall-clock for the debuggability.
	FlightRecDir string

	// journal, when non-nil, persists completed cells and mid-cell machine
	// checkpoints so a killed sweep can resume. Set via AttachJournal.
	journal *Journal
	// ledger, when non-nil, receives a provenance-stamped runstore record
	// for every simulated cell. Set via UseLedger/AttachLedger.
	ledger *runstore.Ledger

	// Sweep-progress instrumentation, exported through RegisterMetrics and
	// Sweep. Atomics (and the runningMu-guarded set) so a live observer can
	// read while Prewarm's workers simulate.
	specsTotal  atomic.Uint64
	specsDone   atomic.Uint64
	specsFailed atomic.Uint64
	workersBusy atomic.Int64
	runningMu   sync.Mutex
	running     map[string]struct{} // labels of specs currently simulating
}

// specLabel renders a spec as a compact human label for SweepState.Running.
func specLabel(sp Spec) string {
	l := fmt.Sprintf("%s iq=%d", sp.Kernel, sp.IQSize)
	if sp.Reuse {
		l += " reuse"
	}
	if sp.Distributed {
		l += " dist"
	}
	return l
}

// RegisterMetrics registers the suite's sweep-progress metrics with r, so a
// parallel sweep is observable point by point through the same registry
// surface the per-machine counters use. The readers are safe to snapshot
// from any goroutine while the sweep runs.
func (s *Suite) RegisterMetrics(r *telemetry.Registry) {
	r.Counter("sweep.specs_total", s.specsTotal.Load)
	r.Counter("sweep.specs_done", s.specsDone.Load)
	r.Counter("sweep.specs_failed", s.specsFailed.Load)
	r.Counter("sweep.cycles_simulated", s.TotalCycles)
	r.Gauge("sweep.workers_busy", func() float64 { return float64(s.workersBusy.Load()) })
}

// SweepState is a point-in-time view of sweep progress for live status
// endpoints.
type SweepState struct {
	Total       int      `json:"total"`
	Done        int      `json:"done"`
	Failed      int      `json:"failed"`
	WorkersBusy int      `json:"workers_busy"`
	Running     []string `json:"running,omitempty"` // specs simulating right now
	Cycles      uint64   `json:"cycles_simulated"`
}

// Sweep returns the current sweep progress. Safe to call concurrently with
// Prewarm.
func (s *Suite) Sweep() SweepState {
	st := SweepState{
		Total:       int(s.specsTotal.Load()),
		Done:        int(s.specsDone.Load()),
		Failed:      int(s.specsFailed.Load()),
		WorkersBusy: int(s.workersBusy.Load()),
		Cycles:      s.TotalCycles(),
	}
	s.runningMu.Lock()
	for l := range s.running {
		st.Running = append(st.Running, l)
	}
	s.runningMu.Unlock()
	sort.Strings(st.Running)
	return st
}

func (s *Suite) markRunning(label string, on bool) {
	s.runningMu.Lock()
	if on {
		if s.running == nil {
			s.running = map[string]struct{}{}
		}
		s.running[label] = struct{}{}
	} else {
		delete(s.running, label)
	}
	s.runningMu.Unlock()
}

// NewSuite creates an empty suite.
func NewSuite() *Suite {
	return &Suite{
		programs: map[string]*prog.Program{},
		results:  map[runKey]RunResult{},
	}
}

func (s *Suite) program(kernel string, dist bool) (*prog.Program, error) {
	id := kernel
	if dist {
		id += "+dist"
	}
	s.mu.Lock()
	p, ok := s.programs[id]
	s.mu.Unlock()
	if ok {
		return p, nil
	}
	k, ok2 := workloads.ByName(kernel)
	if !ok2 {
		return nil, fmt.Errorf("experiments: unknown kernel %q", kernel)
	}
	ir := k.Prog
	if dist {
		ir = compiler.Distribute(ir)
	}
	mp, _, err := compiler.Compile(ir)
	if err != nil {
		return nil, fmt.Errorf("experiments: compile %s: %w", id, err)
	}
	s.mu.Lock()
	s.programs[id] = mp
	s.mu.Unlock()
	return mp, nil
}

// Spec names one simulation.
type Spec struct {
	Kernel      string
	IQSize      int
	Reuse       bool
	Distributed bool
	Strategy    core.Strategy
	NBLTSize    int // meaningful only when Reuse; -1 means default (8)
}

func (sp Spec) key() runKey {
	nblt := sp.NBLTSize
	if nblt < 0 {
		nblt = 8
	}
	return runKey{sp.Kernel, sp.IQSize, sp.Reuse, sp.Distributed, sp.Strategy, nblt}
}

// Run executes (or returns the cached result of) one simulation.
//
// A simulation abort (watchdog deadlock, cycle budget) does not fail the
// call: the run is retried once with a 4x cycle budget, and if it aborts
// again the partial statistics are cached and returned with Err set and a
// nil error, so a figure sweep always completes with the failed cell marked.
// A non-nil error means a setup problem (unknown kernel, compile failure).
func (s *Suite) Run(sp Spec) (RunResult, error) {
	k := sp.key()
	s.mu.Lock()
	if r, ok := s.results[k]; ok {
		s.mu.Unlock()
		return r, nil
	}
	j, led := s.journal, s.ledger
	s.mu.Unlock()
	start := time.Now()

	mp, err := s.program(sp.Kernel, sp.Distributed)
	if err != nil {
		return RunResult{}, err
	}
	cfg := pipeline.DefaultConfig().WithIQSize(sp.IQSize)
	cfg.Reuse.Enabled = sp.Reuse
	cfg.Reuse.Strategy = sp.Strategy
	cfg.Reuse.NBLTSize = k.nblt
	cfg.FastForward = s.FastForward
	if s.Sabotage != nil && s.Sabotage(sp) {
		cfg.MaxCycles = 100
	}

	// With a journal attached, a previous (killed) attempt may have left a
	// mid-run checkpoint; continue from it instead of restarting the cell.
	// The restore fingerprints config and program, so a stale or corrupt
	// checkpoint silently falls back to a fresh machine.
	var m *pipeline.Machine
	if j != nil {
		m = j.tryResume(k, cfg, mp)
	}
	if m == nil {
		m = pipeline.New(cfg, mp)
	}
	ffwd.Attach(m)
	// attempt runs the machine once, with a flight recorder attached when
	// the suite records. A recording that survives its run (the run
	// aborted) is the cell's post-mortem artifact; healthy runs delete
	// theirs so a long sweep leaves artifacts only where they matter.
	var postMortem string
	attempt := func(m *pipeline.Machine, cfg pipeline.Config, try int) error {
		var rec *flightrec.Recorder
		dir := ""
		if s.FlightRecDir != "" {
			dir = filepath.Join(s.FlightRecDir, fmt.Sprintf("%s-iq%d-reuse%v-dist%v-s%d-n%d-try%d",
				k.kernel, k.iq, k.reuse, k.dist, int(k.strategy), k.nblt, try))
			var aerr error
			rec, aerr = flightrec.Attach(m, flightrec.Config{
				Dir: dir,
				Manifest: flightrec.Manifest{
					Kernel:      k.kernel,
					Distribute:  k.dist,
					IQSize:      k.iq,
					Baseline:    !k.reuse,
					Strategy:    int(k.strategy),
					NBLTSize:    k.nblt,
					NBLTSet:     true,
					MaxCycles:   cfg.MaxCycles,
					FastForward: s.FastForward,
				},
			})
			if aerr != nil {
				return aerr
			}
		}
		err := runJournaled(j, k, m, rec)
		if rec != nil {
			if ferr := rec.Finish(); ferr != nil && err == nil {
				err = ferr
			}
			if err != nil {
				postMortem = dir
			} else {
				_ = os.RemoveAll(dir)
			}
		}
		return err
	}
	runErr := attempt(m, cfg, 1)
	retried := false
	if runErr != nil {
		// Retry once with a larger budget: a legitimate workload can
		// outgrow the default cycle budget, and a wedged one fails again
		// quickly via the watchdog.
		retried = true
		budget := cfg.MaxCycles
		if budget == 0 {
			budget = pipeline.DefaultMaxCycles
		}
		cfg.MaxCycles = 4 * budget
		m.Release()
		m = pipeline.New(cfg, mp)
		ffwd.Attach(m)
		if runErr = attempt(m, cfg, 2); runErr != nil {
			runErr = fmt.Errorf("experiments: %s iq=%d reuse=%v (after retry): %w",
				sp.Kernel, sp.IQSize, sp.Reuse, runErr)
		}
	}
	if runErr == nil {
		postMortem = ""
	}
	r := RunResult{
		Kernel:      sp.Kernel,
		IQSize:      sp.IQSize,
		Reuse:       sp.Reuse,
		Distributed: sp.Distributed,
		Cycles:      m.C.Cycles,
		Commits:     m.C.Commits,
		IPC:         m.IPC(),
		Gated:       m.GatedFraction(),
		Power:       power.Analyze(m),
		Core:        m.Ctl.S,
		Err:         runErr,
		Retried:     retried,
		FlightRec:   postMortem,
	}
	// Capture the ledger record while the machine is still live (Release
	// pools its buffers). The ledger is nil-safe, but FromMachine walks the
	// whole counter surface, so skip the work entirely when not recording.
	if led != nil {
		rec := runstore.FromMachine(m)
		rec.Kind = runstore.KindCell
		rec.Kernel = sp.Kernel
		rec.Distributed = sp.Distributed
		rec.FlightRec = s.FlightRecDir != ""
		rec.Retried = retried
		if runErr != nil {
			rec.Err = runErr.Error()
		}
		rec.Host.WallNS = time.Since(start).Nanoseconds()
		if err := led.Append(&rec); err != nil {
			m.Release()
			return RunResult{}, err
		}
		r.RunID = rec.ID
	}
	// The result holds only values, so the machine's scratch buffers can go
	// back to the pool for the next sweep point.
	m.Release()
	s.mu.Lock()
	s.results[k] = r
	s.mu.Unlock()
	if j != nil {
		// Persist the finished cell before returning. A failed append means
		// the sweep is no longer crash-safe, which is worth failing loudly.
		if err := j.record(k, r); err != nil {
			return r, err
		}
	}
	return r, nil
}

// UseLedger directs the suite to append a provenance-stamped runstore record
// for every cell it simulates (cached and journal-replayed cells are not
// re-recorded — they ran, and were recorded, elsewhere). Pass nil to stop
// recording. Recording happens once per finished cell, outside the simulation
// loop, so sweep results are byte-identical with and without a ledger.
func (s *Suite) UseLedger(l *runstore.Ledger) {
	s.mu.Lock()
	s.ledger = l
	s.mu.Unlock()
}

// AttachLedger opens (or creates) the run ledger at path and records every
// subsequently simulated cell into it. The caller owns closing the returned
// ledger.
func (s *Suite) AttachLedger(path string) (*runstore.Ledger, error) {
	l, err := runstore.Open(path)
	if err != nil {
		return nil, err
	}
	s.UseLedger(l)
	return l, nil
}

// runJournaled executes the machine to completion. With a journal attached
// it additionally writes a checkpoint of the cell every CheckpointEvery
// cycles; a checkpoint write failure is deliberately swallowed — it only
// costs re-simulation after a crash, while aborting the run would turn a
// transient I/O hiccup into a lost cell.
func runJournaled(j *Journal, k runKey, m *pipeline.Machine, rec *flightrec.Recorder) error {
	switch {
	case j == nil && rec == nil:
		return m.Run()
	case j == nil:
		return m.RunBreakable(64, rec.Break)
	}
	return m.RunBreakable(j.interval(), func() bool {
		if rec != nil {
			rec.Poll()
		}
		_ = j.checkpoint(k, m)
		return false
	})
}

// TotalCycles returns the simulated cycles accumulated over all cached runs
// (each distinct configuration counted once, as it is simulated once). It is
// the denominator for cmd/reusebench's throughput metrics.
func (s *Suite) TotalCycles() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, r := range s.results {
		n += r.Cycles
	}
	return n
}

// Prewarm runs the given specs in parallel, populating the cache. All
// failures are collected and joined, not just the first.
func (s *Suite) Prewarm(specs []Spec) error {
	par := s.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	var done int
	var progressMu sync.Mutex
	s.specsTotal.Add(uint64(len(specs)))
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s.workersBusy.Add(1)
			label := specLabel(sp)
			s.markRunning(label, true)
			r, err := s.Run(sp)
			s.markRunning(label, false)
			s.workersBusy.Add(-1)
			if err != nil {
				errs[i] = fmt.Errorf("%s iq=%d reuse=%v: %w", sp.Kernel, sp.IQSize, sp.Reuse, err)
			}
			if err != nil || r.Failed() {
				s.specsFailed.Add(1)
			}
			s.specsDone.Add(1)
			if s.Progress != nil {
				progressMu.Lock()
				done++
				s.Progress(done, len(specs), sp, r)
				progressMu.Unlock()
			}
		}(i, sp)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// sweepSpecs returns the baseline+reuse runs for all kernels over the size
// sweep (shared by Figures 5-8).
func sweepSpecs(sizes []int) []Spec {
	var specs []Spec
	for _, k := range workloads.All() {
		for _, iq := range sizes {
			specs = append(specs,
				Spec{Kernel: k.Name, IQSize: iq, Reuse: false, NBLTSize: -1},
				Spec{Kernel: k.Name, IQSize: iq, Reuse: true, NBLTSize: -1})
		}
	}
	return specs
}

// KernelNames returns the Table 2 kernel order.
func KernelNames() []string {
	names := make([]string, 0, 8)
	for _, k := range workloads.All() {
		names = append(names, k.Name)
	}
	return names
}

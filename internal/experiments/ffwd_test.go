package experiments

import "testing"

// TestFigureSweepByteIdentity: a trimmed paper-figure sweep renders the same
// report with the fast-forward engine on and off. The engine's contract is
// that it only skips spans it can reproduce exactly, so Suite.FastForward is
// purely a wall-clock lever.
func TestFigureSweepByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel sweep")
	}
	sizes := []int{32}
	sOff, sOn := NewSuite(), NewSuite()
	sOn.FastForward = true
	f0, err := sOff.Figure5(sizes)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := sOn.Figure5(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if f0.String() != f1.String() {
		t.Errorf("figure 5 differs with ffwd on:\noff:\n%s\non:\n%s", f0, f1)
	}
	g0, err := sOff.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	g1, err := sOn.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if g0.String() != g1.String() {
		t.Errorf("figure 9 differs with ffwd on:\noff:\n%s\non:\n%s", g0, g1)
	}
}

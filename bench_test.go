// Package reuseiq holds the repository-level benchmark harness: one
// testing.B benchmark per table and figure of the paper (run them with
// `go test -bench=. -benchmem`). Each benchmark regenerates its artifact
// through internal/experiments; results are cached inside a shared Suite, so
// within one `go test -bench` invocation every simulation runs exactly once.
// The rendered rows (the same series the paper reports) are attached to the
// benchmark via b.Log — use -v to display them, or run cmd/reusebench for
// the plain-text report.
package reuseiq

import (
	"sync"
	"testing"

	"reuseiq/internal/asm"
	"reuseiq/internal/experiments"
	"reuseiq/internal/ffwd"
	"reuseiq/internal/flightrec"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

func sharedSuite() *experiments.Suite {
	suiteOnce.Do(func() { suite = experiments.NewSuite() })
	return suite
}

func BenchmarkTable1Config(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table1()
	}
	b.Log("\n" + out)
}

func BenchmarkTable2Benchmarks(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table2()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure5GatedRate(b *testing.B) {
	s := sharedSuite()
	var out string
	for i := 0; i < b.N; i++ {
		f, err := s.Figure5(experiments.DefaultSizes)
		if err != nil {
			b.Fatal(err)
		}
		out = f.String()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure6ComponentPower(b *testing.B) {
	s := sharedSuite()
	var out string
	for i := 0; i < b.N; i++ {
		f, err := s.Figure6(experiments.DefaultSizes)
		if err != nil {
			b.Fatal(err)
		}
		out = f.String()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure7OverallPower(b *testing.B) {
	s := sharedSuite()
	var out string
	for i := 0; i < b.N; i++ {
		f, err := s.Figure7(experiments.DefaultSizes)
		if err != nil {
			b.Fatal(err)
		}
		out = f.String()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure8Performance(b *testing.B) {
	s := sharedSuite()
	var out string
	for i := 0; i < b.N; i++ {
		f, err := s.Figure8(experiments.DefaultSizes)
		if err != nil {
			b.Fatal(err)
		}
		out = f.String()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure9LoopDistribution(b *testing.B) {
	s := sharedSuite()
	var out string
	for i := 0; i < b.N; i++ {
		f, err := s.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		out = f.String()
	}
	b.Log("\n" + out)
}

func BenchmarkAblationNBLT(b *testing.B) {
	s := sharedSuite()
	var out string
	for i := 0; i < b.N; i++ {
		a, err := s.AblationNBLT()
		if err != nil {
			b.Fatal(err)
		}
		out = a.String()
	}
	b.Log("\n" + out)
}

func BenchmarkAblationBufferStrategy(b *testing.B) {
	s := sharedSuite()
	var out string
	for i := 0; i < b.N; i++ {
		a, err := s.AblationStrategy()
		if err != nil {
			b.Fatal(err)
		}
		out = a.String()
	}
	b.Log("\n" + out)
}

// BenchmarkSimulatorSpeed measures raw simulation throughput (cycles/sec) on
// a tight loop with the reuse mechanism active.
func BenchmarkSimulatorSpeed(b *testing.B) {
	p := asm.MustAssemble(`
	li   $r2, 0
	li   $r3, 20000
loop:	add  $r2, $r2, $r3
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		m := pipeline.New(pipeline.DefaultConfig(), p)
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		cycles += m.C.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/run")
}

// BenchmarkFastForward measures the analytic fast-forward engine on its
// canonical loop-heavy kernel, against the identical run with the engine off
// (BenchmarkFastForward/off). The cycles/run metric must match between the
// two: the engine only skips spans it can reproduce exactly.
func BenchmarkFastForward(b *testing.B) {
	const iters = 500_000
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			p := ffwd.LoopmarkProgram(iters)
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := pipeline.DefaultConfig()
				cfg.FastForward = on
				m := pipeline.New(cfg, p)
				ffwd.Attach(m)
				if err := m.Run(); err != nil {
					b.Fatal(err)
				}
				cycles += m.C.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles/run")
		})
	}
}

// BenchmarkFlightRecorder measures what always-on time-travel recording
// costs: the BenchmarkSimulatorSpeed workload with a flight recorder
// attached at the default checkpoint interval (on) against the identical
// bare run (off). The acceptance bar (DESIGN.md §5i) is < 10% overhead on
// the on/off ratio; benchdiff watches both subtests.
func BenchmarkFlightRecorder(b *testing.B) {
	p := asm.MustAssemble(`
	li   $r2, 0
	li   $r3, 100000
loop:	add  $r2, $r2, $r3
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m := pipeline.New(pipeline.DefaultConfig(), p)
				if on {
					rec, err := flightrec.Attach(m, flightrec.Config{Dir: dir})
					if err != nil {
						b.Fatal(err)
					}
					if err := m.RunBreakable(64, rec.Break); err != nil {
						b.Fatal(err)
					}
					if err := rec.Finish(); err != nil {
						b.Fatal(err)
					}
				} else if err := m.Run(); err != nil {
					b.Fatal(err)
				}
				cycles += m.C.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles/run")
		})
	}
}

// BenchmarkPowerAnalyze measures the power-model cost on a finished machine.
func BenchmarkPowerAnalyze(b *testing.B) {
	p := asm.MustAssemble(`
	li   $r3, 5000
loop:	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
	`)
	m := pipeline.New(pipeline.DefaultConfig(), p)
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = power.Analyze(m)
	}
}

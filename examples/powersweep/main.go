// Powersweep: reproduce the paper's issue-queue size study for a single
// kernel — how gating, power savings and IPC move as the queue grows from
// 32 to 256 entries (ROB = queue size, LSQ = half, as in Section 3).
package main

import (
	"fmt"
	"log"

	"reuseiq/internal/compiler"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
	"reuseiq/internal/workloads"
)

func main() {
	kernel, ok := workloads.ByName("wss")
	if !ok {
		log.Fatal("kernel not found")
	}
	mp, _, err := compiler.Compile(kernel.Prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("kernel %s (%s): issue-queue size sweep\n\n", kernel.Name, kernel.Source)
	fmt.Printf("%6s  %8s  %8s  %7s  %8s  %8s\n",
		"IQ", "base IPC", "reuse IPC", "gated", "overall", "icache")
	for _, iq := range []int{32, 64, 128, 256} {
		baseCfg := pipeline.BaselineConfig().WithIQSize(iq)
		base := pipeline.New(baseCfg, mp)
		if err := base.Run(); err != nil {
			log.Fatal(err)
		}
		reuseCfg := pipeline.DefaultConfig().WithIQSize(iq)
		reuse := pipeline.New(reuseCfg, mp)
		if err := reuse.Run(); err != nil {
			log.Fatal(err)
		}
		sv := power.Compare(power.Analyze(base), power.Analyze(reuse))
		fmt.Printf("%6d  %8.2f  %9.2f  %6.1f%%  %7.1f%%  %7.1f%%\n",
			iq, base.IPC(), reuse.IPC(), 100*reuse.GatedFraction(),
			100*sv.Overall, 100*sv.Component[power.ICache])
	}
	fmt.Println("\nA short-trip loop like wss gates *less* with a very large queue:")
	fmt.Println("multi-iteration buffering unrolls more copies before gating, delaying")
	fmt.Println("Code Reuse relative to the loop's short lifetime (paper Figure 5).")
}

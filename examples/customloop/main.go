// Customloop: drive the full stack by hand — write a loop nest in the
// compiler IR, lower it to assembly, inspect the generated code, and compare
// the out-of-order model's architectural results against the functional
// interpreter. Demonstrates the NBLT at work on a nested loop (the outer
// loop is detected, found non-bufferable, and filtered afterwards).
package main

import (
	"fmt"
	"log"
	"strings"

	"reuseiq/internal/compiler"
	"reuseiq/internal/interp"
	"reuseiq/internal/pipeline"
)

func main() {
	// smooth: out[i] = (in[i-1] + in[i] + in[i+1]) / 3, swept repeatedly.
	const n, sweeps = 120, 30
	ir := &compiler.Program{
		Name: "smooth",
		Arrays: []compiler.ArrayDecl{
			{Name: "in", Len: n + 2},
			{Name: "out", Len: n + 2},
		},
		Body: []compiler.Stmt{
			compiler.Loop{Var: "k", Lo: 0, Hi: n + 2, Body: []compiler.Stmt{
				compiler.Assign{
					Dest: &compiler.Ref{Array: "in", Index: compiler.IdxVar("k")},
					E:    compiler.Bin{Op: compiler.Mul, L: compiler.IVar("k"), R: compiler.Const(0.125)},
				},
			}},
			compiler.Loop{Var: "t", Lo: 0, Hi: sweeps, Body: []compiler.Stmt{
				compiler.Loop{Var: "i", Lo: 1, Hi: n + 1, Body: []compiler.Stmt{
					compiler.Assign{
						Dest: &compiler.Ref{Array: "out", Index: compiler.IdxVar("i")},
						E: compiler.Bin{Op: compiler.Div,
							L: compiler.Bin{Op: compiler.Add,
								L: compiler.Bin{Op: compiler.Add,
									L: compiler.Ref{Array: "in", Index: compiler.Idx(-1, "i", 1)},
									R: compiler.Ref{Array: "in", Index: compiler.IdxVar("i")}},
								R: compiler.Ref{Array: "in", Index: compiler.Idx(1, "i", 1)}},
							R: compiler.Const(3)},
					},
					compiler.Assign{
						Dest: &compiler.Ref{Array: "in", Index: compiler.IdxVar("i")},
						E: compiler.Bin{Op: compiler.Add,
							L: compiler.Bin{Op: compiler.Mul,
								L: compiler.Ref{Array: "in", Index: compiler.IdxVar("i")},
								R: compiler.Const(0.5)},
							R: compiler.Bin{Op: compiler.Mul,
								L: compiler.Ref{Array: "out", Index: compiler.IdxVar("i")},
								R: compiler.Const(0.5)}},
					},
				}},
			}},
		},
	}

	mp, src, err := compiler.Compile(ir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first 14 lines of generated assembly:")
	for _, line := range strings.Split(src, "\n")[:14] {
		fmt.Println("  ", line)
	}

	// Golden model.
	g := interp.New(mp)
	if err := g.Run(); err != nil {
		log.Fatal(err)
	}
	// Out-of-order model with the reuse issue queue.
	m := pipeline.New(pipeline.DefaultConfig(), mp)
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}

	// Cross-check architectural memory.
	base := mp.Symbols["out"]
	diffs := 0
	for i := 0; i < n+2; i++ {
		if g.State.Mem.ReadF64(base+uint32(8*i)) != m.Mem.ReadF64(base+uint32(8*i)) {
			diffs++
		}
	}
	fmt.Printf("\narchitectural memory check: %d mismatches against the interpreter\n", diffs)
	fmt.Printf("committed %d instructions in %d cycles (IPC %.2f), front end gated %.1f%%\n",
		m.C.Commits, m.C.Cycles, m.IPC(), 100*m.GatedFraction())

	s := m.Ctl.S
	nblt := m.Ctl.NBLT()
	fmt.Printf("\nNBLT at work on the nested loop:\n")
	fmt.Printf("  detections %d, filtered by NBLT %d\n", s.Detections, s.NBLTFiltered)
	fmt.Printf("  revokes %d (inner-loop %d) — the outer 't' loop is registered\n",
		s.Revokes, s.RevokesInner)
	fmt.Printf("  NBLT lookups %d, hits %d, inserts %d\n", nblt.Lookups, nblt.Hits, nblt.Inserts)
}

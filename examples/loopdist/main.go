// Loopdist: reproduce the paper's Section 4 experiment for one kernel —
// apply compiler loop distribution to a large loop body so it fits a
// 64-entry issue queue, and measure the effect on gating and power.
package main

import (
	"fmt"
	"log"

	"reuseiq/internal/compiler"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
	"reuseiq/internal/workloads"
)

func main() {
	kernel, ok := workloads.ByName("btrix")
	if !ok {
		log.Fatal("kernel not found")
	}
	original := kernel.Prog
	optimized := compiler.Distribute(original)

	fmt.Printf("kernel %s: loop distribution (Kennedy–McKinley, conservative name-based deps)\n\n", kernel.Name)
	fmt.Printf("  loops:            %d -> %d\n",
		compiler.CountLoops(original), compiler.CountLoops(optimized))
	fmt.Printf("  largest loop body: %d -> %d assignments\n\n",
		compiler.MaxLoopBody(original), compiler.MaxLoopBody(optimized))

	// Verify the transformation is semantics-preserving via the IR
	// evaluator before measuring anything.
	e1, err := compiler.Eval(original)
	if err != nil {
		log.Fatal(err)
	}
	e2, err := compiler.Eval(optimized)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range original.Arrays {
		for i := range e1.Arrays[a.Name] {
			if e1.Arrays[a.Name][i] != e2.Arrays[a.Name][i] {
				log.Fatalf("distribution changed %s[%d]!", a.Name, i)
			}
		}
	}
	fmt.Println("  semantics check: distributed IR matches original bit for bit")

	fmt.Printf("\n%12s  %7s  %9s  %8s\n", "code", "gated", "IPC loss", "overall")
	for _, variant := range []struct {
		name string
		p    *compiler.Program
	}{{"original", original}, {"distributed", optimized}} {
		mp, _, err := compiler.Compile(variant.p)
		if err != nil {
			log.Fatal(err)
		}
		base := pipeline.New(pipeline.BaselineConfig(), mp)
		if err := base.Run(); err != nil {
			log.Fatal(err)
		}
		reuse := pipeline.New(pipeline.DefaultConfig(), mp)
		if err := reuse.Run(); err != nil {
			log.Fatal(err)
		}
		sv := power.Compare(power.Analyze(base), power.Analyze(reuse))
		fmt.Printf("%12s  %6.1f%%  %8.2f%%  %7.1f%%\n",
			variant.name, 100*reuse.GatedFraction(),
			100*(1-reuse.IPC()/base.IPC()), 100*sv.Overall)
	}
	fmt.Println("\nbtrix's ~90-instruction dominant loop cannot be captured by a 64-entry")
	fmt.Println("queue; after distribution each split loop fits and the front end gates")
	fmt.Println("(paper Figure 9).")
}

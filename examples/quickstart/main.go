// Quickstart: assemble a tiny loop, run it on the reuse-capable processor
// model, and watch the issue queue detect the loop, gate the front end, and
// supply the instructions itself.
package main

import (
	"fmt"
	"log"

	"reuseiq/internal/asm"
	"reuseiq/internal/pipeline"
	"reuseiq/internal/power"
)

const program = `
# Sum the integers 1..10000.
	li   $r2, 0          # sum
	li   $r3, 10000      # i
loop:	add  $r2, $r2, $r3
	addi $r3, $r3, -1
	bne  $r3, $zero, loop
	halt
`

func main() {
	p, err := asm.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}

	// Run with the paper's reuse-capable issue queue...
	reuse := pipeline.New(pipeline.DefaultConfig(), p)
	if err := reuse.Run(); err != nil {
		log.Fatal(err)
	}
	// ...and with a conventional issue queue as the baseline.
	base := pipeline.New(pipeline.BaselineConfig(), p)
	if err := base.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("result: sum = %d (expect %d)\n\n", reuse.ArchInt(2), 10000*10001/2)
	fmt.Printf("baseline: %6d cycles, IPC %.2f\n", base.C.Cycles, base.IPC())
	fmt.Printf("reuse:    %6d cycles, IPC %.2f\n\n", reuse.C.Cycles, reuse.IPC())

	s := reuse.Ctl.S
	fmt.Printf("loop detections:      %d\n", s.Detections)
	fmt.Printf("iterations buffered:  %d (unrolled into the issue queue)\n", s.IterationsBuffered)
	fmt.Printf("promotions to reuse:  %d\n", s.Promotions)
	fmt.Printf("instances re-renamed: %d\n", s.ReuseRenames)
	fmt.Printf("front end gated:      %.1f%% of cycles\n\n", 100*reuse.GatedFraction())

	sv := power.Compare(power.Analyze(base), power.Analyze(reuse))
	fmt.Printf("power savings: overall %.1f%%, icache %.1f%%, bpred %.1f%%, issue queue %.1f%%\n",
		100*sv.Overall, 100*sv.Component[power.ICache],
		100*sv.Component[power.BPred], 100*sv.Component[power.IssueQueue])
}
